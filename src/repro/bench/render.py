"""PostScript rendering of the paper's evaluation figures.

Turns the model-mode data behind Figures 11–13 into actual vector
figures using the library's own plotting substrate, plus a Gantt view
of any simulated schedule.  ``repro-bench <figure> --render out.ps``
drives these.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.bench.figure11 import StageRow, figure11_model
from repro.bench.figure12 import SERIES, SERIES_LABELS, figure12_model
from repro.bench.figure13 import Figure13Row, figure13_model
from repro.bench.taskgraphs import simulate_implementation
from repro.bench.workloads import paper_workloads
from repro.plotting.bars import BarChart, BarSeries
from repro.plotting.charts import Axis, LineChart, Series
from repro.plotting.gantt import plot_schedule_gantt
from repro.plotting.ps import PAGE_HEIGHT, PAGE_WIDTH, PostScriptCanvas

_MARGIN = 60.0


def render_figure11_ps(path: Path | str, rows: list[StageRow] | None = None) -> None:
    """Fig. 11: per-stage sequential vs fully-parallel times (bars)."""
    if rows is None:
        rows = figure11_model()
    chart = BarChart(
        title="Speedup per individual stage (19 files, 384k data points)",
        categories=[r.stage for r in rows],
        y_label="Execution time (s)",
    )
    chart.add(BarSeries("Sequential Original", [r.sequential_s for r in rows], gray=0.25))
    chart.add(BarSeries("Full Parallelization", [r.parallel_s for r in rows], gray=0.65))
    canvas = PostScriptCanvas(title="Figure 11")
    chart.draw(
        canvas,
        x0=_MARGIN,
        y0=PAGE_HEIGHT / 2,
        width=PAGE_WIDTH - 2 * _MARGIN,
        height=PAGE_HEIGHT / 2 - 2 * _MARGIN,
    )
    canvas.save(path)


def render_figure12_ps(path: Path | str, series: dict[str, list] | None = None) -> None:
    """Fig. 12: per-event grouped execution times (bars)."""
    if series is None:
        series = figure12_model()
    chart = BarChart(
        title="Execution time per event",
        categories=list(series["events"]),
        y_label="Time (seconds)",
    )
    grays = (0.15, 0.4, 0.6, 0.85)
    for key, gray in zip(SERIES, grays):
        chart.add(BarSeries(SERIES_LABELS[key], list(series[key]), gray=gray))
    canvas = PostScriptCanvas(title="Figure 12")
    chart.draw(
        canvas,
        x0=_MARGIN,
        y0=PAGE_HEIGHT / 2,
        width=PAGE_WIDTH - 2 * _MARGIN,
        height=PAGE_HEIGHT / 2 - 2 * _MARGIN,
    )
    canvas.save(path)


def render_figure13_ps(path: Path | str, rows: list[Figure13Row] | None = None) -> None:
    """Fig. 13: speedup and throughput vs problem size (two panels)."""
    if rows is None:
        rows = figure13_model()
    points = np.array([r.data_points for r in rows], dtype=float)
    canvas = PostScriptCanvas(title="Figure 13")
    panel_h = (PAGE_HEIGHT - 3 * _MARGIN) / 2

    speedup = LineChart(
        title="Overall speedup vs problem size",
        x_axis=Axis(label="Input data points per event", log=True),
        y_axis=Axis(label="Speedup (x)"),
    )
    speedup.add(Series(x=points, y=np.array([r.speedup for r in rows]), label="speedup"))
    speedup.draw(
        canvas,
        x0=_MARGIN,
        y0=2 * _MARGIN + panel_h,
        width=PAGE_WIDTH - 2 * _MARGIN,
        height=panel_h,
    )

    throughput = LineChart(
        title="Data points per second vs problem size",
        x_axis=Axis(label="Input data points per event", log=True),
        y_axis=Axis(label="points/s"),
    )
    throughput.add(
        Series(
            x=points,
            y=np.array([r.points_per_second_parallel for r in rows]),
            label="parallel",
        )
    )
    throughput.add(
        Series(
            x=points,
            y=np.array([r.points_per_second_sequential for r in rows]),
            label="sequential",
            gray=0.5,
            dash=(3, 2),
        )
    )
    throughput.draw(
        canvas,
        x0=_MARGIN,
        y0=_MARGIN,
        width=PAGE_WIDTH - 2 * _MARGIN,
        height=panel_h,
    )
    canvas.save(path)


def render_schedule_ps(
    path: Path | str,
    implementation: str = "full-parallel",
    event_index: int = -1,
) -> None:
    """Gantt of one implementation's simulated schedule."""
    workload = paper_workloads()[event_index]
    result = simulate_implementation(implementation, workload)
    plot_schedule_gantt(
        path,
        result,
        title=f"{implementation} on {workload.event_id} "
        f"({workload.n_files} files, {workload.total_points:,} pts)",
    )
