"""Experiment E6 — ablation studies for the §VIII discussion.

Three sweeps over the simulated machine and task-graph parameters:

- **worker count** — speedup of the fully-parallel implementation as
  logical processors grow (Amdahl saturation; the paper's "speedup
  roughly proportional to problem size" flattens with cores);
- **I/O capacity** — how the disk's concurrent-stream capacity moves
  the I/O-heavy stages (III, X) and the end-to-end number;
- **temp-folder staging cost** — sensitivity of stages IV/V/VIII to
  the per-point staging overhead, quantifying how much the
  "concurrent binaries in temp folders" trick pays for its file
  copies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.bench.costmodel import CostModel, DEFAULT_COST_MODEL, Overheads
from repro.bench.taskgraphs import simulate_implementation
from repro.bench.workloads import EventWorkload, paper_workloads
from repro.parallel.simulate import PAPER_MACHINE, SimulatedMachine


@dataclass(frozen=True)
class AblationPoint:
    """One sweep sample."""

    parameter: str
    value: float
    full_parallel_s: float
    speedup: float


def _speedup(
    workload: EventWorkload, model: CostModel, machine: SimulatedMachine
) -> tuple[float, float]:
    seq = simulate_implementation("seq-original", workload, model, machine).makespan_s
    full = simulate_implementation("full-parallel", workload, model, machine).makespan_s
    return full, seq / full


def sweep_workers(
    counts: tuple[int, ...] = (1, 2, 4, 6, 8, 12, 16, 24),
    model: CostModel = DEFAULT_COST_MODEL,
    workload: EventWorkload | None = None,
) -> list[AblationPoint]:
    """Speedup vs logical-processor count (largest event by default).

    Counts beyond 12 extend the paper machine with extra E-core-class
    workers, probing where the pipeline stops scaling.
    """
    if workload is None:
        workload = paper_workloads()[-1]
    points = []
    for count in counts:
        if count <= PAPER_MACHINE.num_workers:
            machine = PAPER_MACHINE.restricted(count)
        else:
            extra = (0.55,) * (count - PAPER_MACHINE.num_workers)
            machine = SimulatedMachine(
                speeds=PAPER_MACHINE.speeds + extra,
                io_capacity=PAPER_MACHINE.io_capacity,
                mem_capacity=PAPER_MACHINE.mem_capacity,
            )
        full, speedup = _speedup(workload, model, machine)
        points.append(AblationPoint("workers", float(count), full, speedup))
    return points


def sweep_io_capacity(
    capacities: tuple[float, ...] = (1.0, 1.5, 2.0, 3.0, 4.0, 8.0),
    model: CostModel = DEFAULT_COST_MODEL,
    workload: EventWorkload | None = None,
) -> list[AblationPoint]:
    """Speedup vs disk concurrent-stream capacity."""
    if workload is None:
        workload = paper_workloads()[-1]
    points = []
    for capacity in capacities:
        machine = SimulatedMachine(
            speeds=PAPER_MACHINE.speeds,
            io_capacity=capacity,
            mem_capacity=PAPER_MACHINE.mem_capacity,
        )
        full, speedup = _speedup(workload, model, machine)
        points.append(AblationPoint("io_capacity", capacity, full, speedup))
    return points


def sweep_staging_cost(
    multipliers: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0, 4.0),
    model: CostModel = DEFAULT_COST_MODEL,
    workload: EventWorkload | None = None,
) -> list[AblationPoint]:
    """Speedup vs temp-folder staging overhead (x the calibrated cost)."""
    if workload is None:
        workload = paper_workloads()[-1]
    base = model.overheads
    points = []
    for mult in multipliers:
        overheads = replace(
            base,
            tool_instance_fixed_s=base.tool_instance_fixed_s * mult,
            tool_staging_per_point_s=base.tool_staging_per_point_s * mult,
            exe_move_s=base.exe_move_s * mult,
        )
        swept = CostModel(overheads=overheads)
        full, speedup = _speedup(workload, swept, PAPER_MACHINE)
        points.append(AblationPoint("staging_multiplier", mult, full, speedup))
    return points


def sweep_machines(
    model: CostModel = DEFAULT_COST_MODEL,
    workload: EventWorkload | None = None,
    implementation: str = "full-parallel",
) -> dict[str, AblationPoint]:
    """Predicted speedup of each named machine preset (§VIII).

    The sequential baseline always runs on one speed-1.0 worker — the
    same normalization the paper's speedups use — so presets are
    comparable to the published 2.88x.
    """
    from repro.parallel.simulate import MACHINE_PRESETS

    if workload is None:
        workload = paper_workloads()[-1]
    seq = simulate_implementation("seq-original", workload, model).makespan_s
    out: dict[str, AblationPoint] = {}
    for name, machine in MACHINE_PRESETS.items():
        full = simulate_implementation(implementation, workload, model, machine).makespan_s
        out[name] = AblationPoint(
            parameter=f"machine:{name}",
            value=float(machine.num_workers),
            full_parallel_s=full,
            speedup=seq / full,
        )
    return out


def amdahl_bound(model: CostModel = DEFAULT_COST_MODEL,
                 workload: EventWorkload | None = None) -> float:
    """Upper-bound speedup from the critical path (infinite workers).

    Simulates the fully-parallel graph on a machine with an abundance
    of full-speed workers and unconstrained shared resources.
    """
    if workload is None:
        workload = paper_workloads()[-1]
    infinite = SimulatedMachine(
        speeds=(1.0,) * 512, io_capacity=1e9, mem_capacity=1e9
    )
    seq = simulate_implementation("seq-original", workload, model, infinite).makespan_s
    full = simulate_implementation("full-parallel", workload, model, infinite).makespan_s
    return seq / full
