"""Experiment E3 — Fig. 12: grouped per-event execution times.

The same data as Table I organized as the figure's grouped bars: for
each of the six events, the four implementations' execution times.
Returns plain series so callers can chart or tabulate them.
"""

from __future__ import annotations

from repro.bench.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.bench.report import format_table
from repro.bench.table1 import Table1Row, table1_model
from repro.parallel.simulate import PAPER_MACHINE, SimulatedMachine

SERIES = ("seq_original_s", "seq_optimized_s", "partial_parallel_s", "full_parallel_s")

SERIES_LABELS = {
    "seq_original_s": "Sequential Original",
    "seq_optimized_s": "Sequential Optimal",
    "partial_parallel_s": "Partially Parallelized",
    "full_parallel_s": "Fully Parallelized",
}


def figure12_model(
    model: CostModel = DEFAULT_COST_MODEL,
    machine: SimulatedMachine = PAPER_MACHINE,
) -> dict[str, list[float]]:
    """The figure's four series over the six events (plus labels).

    Returns a mapping with an ``events`` label list and one list of
    seconds per implementation series.
    """
    rows = table1_model(model, machine)
    out: dict[str, list] = {"events": [row.label for row in rows]}
    for series in SERIES:
        out[series] = [getattr(row, series) for row in rows]
    return out


def render_figure12(series: dict[str, list[float]]) -> str:
    """Tabular rendering of the grouped bars."""
    headers = ("Event",) + tuple(SERIES_LABELS[s] for s in SERIES)
    body = []
    for i, label in enumerate(series["events"]):
        body.append((label, *(series[s][i] for s in SERIES)))
    return format_table(headers, body)


def monotone_in_points(rows: list[Table1Row]) -> bool:
    """Fig. 12's qualitative claim: time grows with total data points."""
    ordered = sorted(rows, key=lambda r: r.data_points)
    times = [r.full_parallel_s for r in ordered]
    return all(a <= b for a, b in zip(times, times[1:]))
