"""Measured-mode harness: real wall-clock runs of the Python pipeline.

Materializes scaled-down synthetic events and times the actual
implementations on this machine.  On a single-core container the
parallel implementations cannot beat the sequential ones — that is the
point of keeping measured mode separate from model mode — but the
structural claims (optimized < original, output equality) still hold
and are reported.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.bench.workloads import EventWorkload, materialize, scaled_workload
from repro.core import IMPLEMENTATIONS, RunContext
from repro.core.context import ParallelSettings
from repro.core.runner import PipelineResult
from repro.spectra.response import ResponseSpectrumConfig, default_periods
from repro.synth.events import EventSpec


@dataclass(frozen=True)
class MeasuredRow:
    """Wall-clock timings of all four implementations on one workload."""

    event_id: str
    n_files: int
    total_points: int
    times_s: dict[str, float]
    results: dict[str, PipelineResult]

    @property
    def speedup(self) -> float:
        """End-to-end speedup (seq original / fully parallel)."""
        return self.times_s["seq-original"] / self.times_s["full-parallel"]


def small_response_config(n_periods: int = 30, dampings: tuple[float, ...] = (0.05,)) -> ResponseSpectrumConfig:
    """A reduced oscillator grid for tractable measured runs."""
    return ResponseSpectrumConfig(periods=default_periods(n_periods), dampings=dampings)


def measure_implementations(
    event: EventSpec,
    *,
    scale: float = 0.05,
    parallel: ParallelSettings | None = None,
    response_config: ResponseSpectrumConfig | None = None,
    keep_dir: Path | None = None,
    include_extensions: bool = False,
    trace_dir: Path | None = None,
    profile_dir: Path | None = None,
) -> MeasuredRow:
    """Time all four implementations on one scaled-down event.

    Each implementation gets a fresh workspace with an identical
    dataset (same seed), so times are comparable and outputs can be
    diffed.  ``keep_dir`` preserves the workspaces for inspection;
    ``include_extensions`` additionally times the wavefront and
    cluster extensions; ``trace_dir`` records a span trace per
    implementation and writes ``<name>.trace.json`` Chrome traces
    there (the timings then come from the same spans the traces show);
    ``profile_dir`` samples each run and writes
    ``<name>.speedscope.json`` flamegraph profiles there (implies
    tracing, which the profiler needs for span attribution).
    """
    workload = scaled_workload(event, scale)
    times: dict[str, float] = {}
    results: dict[str, PipelineResult] = {}
    base = Path(keep_dir) if keep_dir else Path(tempfile.mkdtemp(prefix="repro-bench-"))
    implementations = list(IMPLEMENTATIONS)
    if include_extensions:
        from repro.core import ClusterParallel, WavefrontParallel

        implementations += [WavefrontParallel, ClusterParallel]
    try:
        for impl_cls in implementations:
            root = base / impl_cls.name
            ctx = RunContext.for_directory(
                root,
                response_config=response_config or small_response_config(),
                parallel=parallel or ParallelSettings(),
            )
            if trace_dir is not None or profile_dir is not None:
                from repro.observability.tracer import Tracer

                ctx.tracer = Tracer()
            if profile_dir is not None:
                from repro.observability.profiling import SamplingProfiler

                ctx.profiler = SamplingProfiler()
            materialize(event, workload, ctx.workspace.input_dir)
            result = impl_cls().run(ctx)
            times[impl_cls.name] = result.total_s
            results[impl_cls.name] = result
            if trace_dir is not None and result.trace is not None:
                from repro.observability.export import write_chrome_trace

                out = Path(trace_dir)
                out.mkdir(parents=True, exist_ok=True)
                write_chrome_trace(
                    out / f"{impl_cls.name}.trace.json", result.trace,
                    profile=result.profile,
                )
            if profile_dir is not None and result.profile is not None:
                from repro.observability.profiling import write_speedscope

                write_speedscope(
                    Path(profile_dir) / f"{impl_cls.name}.speedscope.json",
                    result.profile, name=f"{workload.event_id} {impl_cls.name}",
                )
    finally:
        if keep_dir is None:
            shutil.rmtree(base, ignore_errors=True)
    return MeasuredRow(
        event_id=workload.event_id,
        n_files=workload.n_files,
        total_points=workload.total_points,
        times_s=times,
        results=results,
    )
