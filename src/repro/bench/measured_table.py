"""Measured-mode Table I: real wall-clock for all events and
implementations, at a configurable scale.

The model-mode table (:mod:`repro.bench.table1`) reproduces the
paper's numbers; this one documents what the Python pipeline actually
does on the present machine — including the honest single-core story
where the parallel implementations cannot win.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import measure_implementations, small_response_config
from repro.bench.report import format_table
from repro.core.context import ParallelSettings
from repro.synth.events import PAPER_EVENTS, EventSpec


@dataclass(frozen=True)
class MeasuredTableRow:
    """One measured row: wall seconds per implementation."""

    event_id: str
    n_files: int
    total_points: int
    times_s: dict[str, float]

    @property
    def speedup(self) -> float:
        """seq-original / full-parallel on this machine."""
        return self.times_s["seq-original"] / self.times_s["full-parallel"]


def measured_table(
    *,
    scale: float = 0.02,
    events: tuple[EventSpec, ...] = PAPER_EVENTS,
    workers: int | None = None,
    n_periods: int = 30,
) -> list[MeasuredTableRow]:
    """Measure every event at the given scale (real wall-clock)."""
    rows = []
    for event in events:
        measured = measure_implementations(
            event,
            scale=scale,
            parallel=ParallelSettings(num_workers=workers),
            response_config=small_response_config(n_periods),
        )
        rows.append(
            MeasuredTableRow(
                event_id=measured.event_id,
                n_files=measured.n_files,
                total_points=measured.total_points,
                times_s=measured.times_s,
            )
        )
    return rows


def render_measured_table(rows: list[MeasuredTableRow]) -> str:
    """Paper-style rendering of the measured table."""
    headers = ("Event", "Files", "Points", "SeqOri", "SeqOpt", "PartPar", "FullPar", "SpeedUp")
    body = [
        (
            row.event_id,
            row.n_files,
            row.total_points,
            row.times_s["seq-original"],
            row.times_s["seq-optimized"],
            row.times_s["partial-parallel"],
            row.times_s["full-parallel"],
            f"{row.speedup:.2f}x",
        )
        for row in rows
    ]
    return format_table(headers, body)
