"""Build simulated task graphs for each pipeline implementation.

The builder translates an implementation's structure — the same stage
plan and strategies executed by :mod:`repro.core` — into
:class:`~repro.parallel.simulate.SimTask` graphs, charging the cost
model's per-process costs plus the parallel-runtime overheads:

- sequential implementations: one task per process, chained;
- task stages (I, II, XI): one task per process, barriers between
  stages, plus task-spawn overhead (P1's directory scan contributes
  per-file subtasks — its parallelization is the paper's §V.1);
- loop stages (III, IX, X, VI): one task per loop item, with per-item
  dispatch overhead and the natural per-file load imbalance;
- temp-folder stages (IV, V, VIII): per instance, a stage-in task, a
  tool task and a stage-out task, plus the sequential EXE-copy chain
  the paper performs "to avoid races".

The per-stage and end-to-end speedups then *emerge* from the machine
model; they are not fitted.
"""

from __future__ import annotations

from repro.bench.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.bench.workloads import EventWorkload
from repro.core.registry import OPTIMIZED_ORDER, ORIGINAL_ORDER, PROCESSES
from repro.core.stages import (
    LOOP,
    SEQ,
    STAGES,
    TASKS,
    TEMP_FOLDERS,
    FULL_PARALLEL_STAGES,
    PARTIAL_PARALLEL_STAGES,
)
from repro.errors import CalibrationError
from repro.parallel.simulate import (
    PAPER_MACHINE,
    SimTask,
    SimulatedMachine,
    SimulationResult,
    simulate_task_graph,
)

#: Maps implementation name -> which stages run parallel (None = all seq).
_PARALLEL_STAGES: dict[str, tuple[str, ...]] = {
    "partial-parallel": PARTIAL_PARALLEL_STAGES,
    "full-parallel": FULL_PARALLEL_STAGES,
}


def _sequential_tasks(order: tuple[int, ...], workload: EventWorkload, model: CostModel) -> list[SimTask]:
    tasks: list[SimTask] = []
    prev: str | None = None
    for pid in order:
        pc = model.process(pid)
        name = f"P{pid}"
        tasks.append(
            SimTask(
                name=name,
                work_s=model.cost(pid, workload),
                io_fraction=pc.io,
                mem_fraction=pc.mem,
                deps=(prev,) if prev else (),
                stage=PROCESSES[pid].label,
            )
        )
        prev = name
    return tasks


def _loop_items(pid: int, workload: EventWorkload, model: CostModel) -> list[float]:
    """Per-item costs of a loop stage's work decomposition."""
    shares = model.file_cost_shares(pid, workload)
    if pid == 3:
        return shares  # one item per station
    if pid == 16:
        # 3N trace items: each station's cost splits across components.
        return [s / 3.0 for s in shares for _ in range(3)]
    if pid == 19:
        # 2N interleaved file items per the legacy list (V2, R per
        # station-component collapses to per-station V2/R batches).
        return [s / 2.0 for s in shares for _ in range(2)]
    raise CalibrationError(f"no loop decomposition for P{pid}")


class _GraphBuilder:
    """Accumulates tasks with stage barriers."""

    def __init__(self) -> None:
        self.tasks: list[SimTask] = []
        self._frontier: tuple[str, ...] = ()

    def add_layer(self, layer: list[SimTask]) -> None:
        """Add tasks that all depend on the previous barrier."""
        self.tasks.extend(
            SimTask(
                name=t.name,
                work_s=t.work_s,
                io_fraction=t.io_fraction,
                mem_fraction=t.mem_fraction,
                deps=tuple(set(t.deps) | set(self._frontier)),
                stage=t.stage,
            )
            for t in layer
        )
        self._frontier = tuple(t.name for t in layer)

    def add_chained(self, layer: list[SimTask]) -> None:
        """Add tasks chained one after another behind the barrier."""
        prev = self._frontier
        out = []
        for t in layer:
            out.append(
                SimTask(
                    name=t.name,
                    work_s=t.work_s,
                    io_fraction=t.io_fraction,
                    mem_fraction=t.mem_fraction,
                    deps=prev,
                    stage=t.stage,
                )
            )
            prev = (t.name,)
        self.tasks.extend(out)
        self._frontier = prev


def _stage_tasks_parallel(
    stage_name: str,
    pids: tuple[int, ...],
    workload: EventWorkload,
    model: CostModel,
) -> list[SimTask]:
    """Task-parallel stage: one task per process (+ spawn overhead).

    P1 (gather input files) decomposes into per-file subtasks — the
    paper parallelized the C++ processes #0/#1 internally (§V.1).
    """
    ovh = model.overheads.task_spawn_s
    out: list[SimTask] = []
    for pid in pids:
        pc = model.process(pid)
        cost = model.cost(pid, workload)
        if pid == 1 and workload.n_files > 1:
            share = cost / workload.n_files
            for i in range(workload.n_files):
                out.append(
                    SimTask(
                        name=f"{stage_name}.P1.{i}",
                        work_s=share + ovh,
                        io_fraction=pc.io,
                        mem_fraction=pc.mem,
                        stage=stage_name,
                    )
                )
        else:
            out.append(
                SimTask(
                    name=f"{stage_name}.P{pid}",
                    work_s=cost + ovh,
                    io_fraction=pc.io,
                    mem_fraction=pc.mem,
                    stage=stage_name,
                )
            )
    return out


def _stage_loop_parallel(
    stage_name: str,
    pid: int,
    workload: EventWorkload,
    model: CostModel,
    builder: _GraphBuilder,
) -> None:
    """Parallel-loop stage: one task per item behind the barrier."""
    ovh = model.overheads.loop_item_s
    pc = model.process(pid)
    if pid == 10:
        # Stage VI: outer station loop sequential, inner 3-component
        # loop parallel — N chained groups of 3 concurrent tasks.
        shares = model.file_cost_shares(pid, workload)
        for i, share in enumerate(shares):
            layer = [
                SimTask(
                    name=f"{stage_name}.P10.{i}.{c}",
                    work_s=share / 3.0 + model.overheads.task_spawn_s,
                    io_fraction=pc.io,
                    mem_fraction=pc.mem,
                    stage=stage_name,
                )
                for c in range(3)
            ]
            builder.add_layer(layer)
        return
    items = _loop_items(pid, workload, model)
    layer = [
        SimTask(
            name=f"{stage_name}.P{pid}.{i}",
            work_s=cost + ovh,
            io_fraction=pc.io,
            mem_fraction=pc.mem,
            stage=stage_name,
        )
        for i, cost in enumerate(items)
    ]
    builder.add_layer(layer)


def _stage_temp_folders(
    stage_name: str,
    pid: int,
    workload: EventWorkload,
    model: CostModel,
    builder: _GraphBuilder,
) -> None:
    """Temp-folder stage: stage-in -> tool -> stage-out per instance,
    plus the sequential EXE-copy chain."""
    ovh = model.overheads
    pc = model.process(pid)
    shares = model.file_cost_shares(pid, workload)
    barrier = builder._frontier
    # Sequential EXE moves: a chain of small tasks; instance i's tool
    # run additionally depends on exe-move i.
    exe_names: list[str] = []
    prev = barrier
    exe_tasks: list[SimTask] = []
    for i in range(workload.n_files):
        name = f"{stage_name}.exe.{i}"
        exe_tasks.append(
            SimTask(
                name=name,
                work_s=ovh.exe_move_s,
                io_fraction=0.9,
                deps=prev,
                stage=stage_name,
            )
        )
        prev = (name,)
        exe_names.append(name)
    builder.tasks.extend(exe_tasks)

    finals: list[str] = []
    for i, (share, points) in enumerate(zip(shares, workload.file_points)):
        staging = 0.5 * (ovh.tool_instance_fixed_s + ovh.tool_staging_per_point_s * points)
        t_in = SimTask(
            name=f"{stage_name}.in.{i}",
            work_s=staging,
            io_fraction=0.95,
            deps=barrier,
            stage=stage_name,
        )
        t_tool = SimTask(
            name=f"{stage_name}.tool.{i}",
            work_s=share,
            io_fraction=pc.io,
            mem_fraction=pc.mem,
            deps=(t_in.name, exe_names[i]),
            stage=stage_name,
        )
        t_out = SimTask(
            name=f"{stage_name}.out.{i}",
            work_s=staging,
            io_fraction=0.95,
            deps=(t_tool.name,),
            stage=stage_name,
        )
        builder.tasks.extend((t_in, t_tool, t_out))
        finals.append(t_out.name)
    builder._frontier = tuple(finals)


def _wavefront_tasks(workload: EventWorkload, model: CostModel) -> list[SimTask]:
    """Task graph of the §VIII wavefront extension.

    A short prologue (stages I, II, VII equivalents), then one
    dependency chain per station — separation, two staged corrections,
    Fourier, corners, three concurrent response traces, GEM and the
    three plots — with a single epilogue merge, so only one driver
    charge instead of ten.
    """
    builder = _GraphBuilder()
    builder.add_layer(_stage_tasks_parallel("prologue", (0, 1), workload, model))
    builder.add_layer(_stage_tasks_parallel("prologue", (2, 5, 8, 17), workload, model))
    prologue = builder._frontier
    ovh = model.overheads

    shares = {pid: model.file_cost_shares(pid, workload) for pid in
              (3, 4, 7, 10, 13, 16, 19, 9, 15, 18)}
    finals: list[str] = []
    for i, points in enumerate(workload.file_points):
        staging = 0.5 * (ovh.tool_instance_fixed_s + ovh.tool_staging_per_point_s * points)

        def chain_task(name: str, pid: int, work: float, deps: tuple[str, ...]) -> SimTask:
            pc = model.process(pid)
            return SimTask(
                name=name,
                work_s=work + ovh.loop_item_s,
                io_fraction=pc.io,
                mem_fraction=pc.mem,
                deps=deps,
                stage="wavefront",
            )

        tasks = [
            chain_task(f"wf.{i}.p3", 3, shares[3][i], prologue),
            chain_task(f"wf.{i}.p4", 4, shares[4][i] + 2 * staging, (f"wf.{i}.p3",)),
            chain_task(f"wf.{i}.p7", 7, shares[7][i] + 2 * staging, (f"wf.{i}.p4",)),
            chain_task(f"wf.{i}.p10", 10, shares[10][i], (f"wf.{i}.p7",)),
            chain_task(f"wf.{i}.p13", 13, shares[13][i] + 2 * staging, (f"wf.{i}.p10",)),
        ]
        # Three response traces run as the chain's widest point.
        trace_names = []
        for c in range(3):
            tasks.append(
                chain_task(
                    f"wf.{i}.p16.{c}", 16, shares[16][i] / 3.0, (f"wf.{i}.p13",)
                )
            )
            trace_names.append(f"wf.{i}.p16.{c}")
        tasks.append(chain_task(f"wf.{i}.p19", 19, shares[19][i], tuple(trace_names)))
        tasks.append(chain_task(f"wf.{i}.p9", 9, shares[9][i], (f"wf.{i}.p10",)))
        tasks.append(chain_task(f"wf.{i}.p15", 15, shares[15][i], (f"wf.{i}.p13",)))
        tasks.append(chain_task(f"wf.{i}.p18", 18, shares[18][i], tuple(trace_names)))
        builder.tasks.extend(tasks)
        finals.extend((f"wf.{i}.p19", f"wf.{i}.p9", f"wf.{i}.p15", f"wf.{i}.p18"))

    builder._frontier = tuple(finals)
    builder.add_chained(
        [
            SimTask(
                name="wf.epilogue",
                work_s=model.overheads.driver_cost(workload.total_points),
                io_fraction=0.6,
                stage="driver",
            )
        ]
    )
    return builder.tasks


def build_sim_tasks(
    implementation: str,
    workload: EventWorkload,
    model: CostModel = DEFAULT_COST_MODEL,
) -> list[SimTask]:
    """The simulated task graph of one implementation on one workload."""
    if implementation == "seq-original":
        return _sequential_tasks(ORIGINAL_ORDER, workload, model)
    if implementation == "seq-optimized":
        return _sequential_tasks(OPTIMIZED_ORDER, workload, model)
    if implementation == "wavefront-parallel":
        return _wavefront_tasks(workload, model)
    if implementation not in _PARALLEL_STAGES:
        raise CalibrationError(f"unknown implementation {implementation!r}")
    parallel_stages = _PARALLEL_STAGES[implementation]

    builder = _GraphBuilder()
    for stage in STAGES:
        strategy = (
            stage.partial_strategy
            if implementation == "partial-parallel"
            else stage.full_strategy
        )
        if stage.name not in parallel_stages:
            strategy = SEQ
        if strategy != SEQ:
            pending_driver = True
        else:
            pending_driver = False
        if strategy == SEQ:
            layer = []
            for pid in stage.processes:
                pc = model.process(pid)
                layer.append(
                    SimTask(
                        name=f"{stage.name}.P{pid}",
                        work_s=model.cost(pid, workload),
                        io_fraction=pc.io,
                        mem_fraction=pc.mem,
                        stage=stage.name,
                    )
                )
            builder.add_chained(layer)
        elif strategy == TASKS:
            builder.add_layer(
                _stage_tasks_parallel(stage.name, stage.processes, workload, model)
            )
        elif strategy == LOOP:
            (pid,) = stage.processes
            _stage_loop_parallel(stage.name, pid, workload, model, builder)
        elif strategy == TEMP_FOLDERS:
            (pid,) = stage.processes
            _stage_temp_folders(stage.name, pid, workload, model, builder)
        else:
            raise CalibrationError(f"unknown strategy {strategy!r}")
        if pending_driver:
            # Serial driver work trails every parallel stage (see
            # Overheads.driver_cost); attributed to no stage so the
            # Fig. 11 per-stage spans stay clean.
            builder.add_chained(
                [
                    SimTask(
                        name=f"{stage.name}.driver",
                        work_s=model.overheads.driver_cost(workload.total_points),
                        io_fraction=0.6,
                        stage="driver",
                    )
                ]
            )
    return builder.tasks


def simulate_implementation(
    implementation: str,
    workload: EventWorkload,
    model: CostModel = DEFAULT_COST_MODEL,
    machine: SimulatedMachine = PAPER_MACHINE,
) -> SimulationResult:
    """Simulate one implementation end-to-end on the machine model.

    The sequential implementations run on a single speed-1.0 worker
    (the paper's baseline measures one core); the parallel ones use the
    full machine.
    """
    tasks = build_sim_tasks(implementation, workload, model)
    if implementation.startswith("seq-"):
        machine = SimulatedMachine(
            speeds=(1.0,), io_capacity=machine.io_capacity, mem_capacity=machine.mem_capacity
        )
    return simulate_task_graph(tasks, machine)
