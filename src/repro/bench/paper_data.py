"""The paper's published numbers, used as reproduction targets.

Transcribed from Table I, Fig. 11 and §VII-B of Canizales, Mixco &
McClurg (IPPS 2024).  Nothing here feeds the cost model except the
single calibration anchor (the largest event's sequential totals and
the stage IX share); the rest is held out for validation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperEventRow:
    """One row of the paper's Table I (times in seconds)."""

    event_id: str
    label: str
    v1_files: int
    data_points: int
    seq_original_s: float
    seq_optimized_s: float
    partial_parallel_s: float
    full_parallel_s: float
    speedup: float


#: Table I verbatim, keyed to our synthetic catalog's event ids.
PAPER_TABLE1: tuple[PaperEventRow, ...] = (
    PaperEventRow("EV-NOV18", "Nov'18", 5, 56_000, 76.6, 64.1, 61.9, 32.1, 2.39),
    PaperEventRow("EV-APR18", "Apr'18", 5, 115_000, 149.6, 127.1, 126.4, 56.5, 2.65),
    PaperEventRow("EV-JUL19A", "Jul'19", 9, 145_000, 174.9, 161.3, 154.8, 68.1, 2.57),
    PaperEventRow("EV-APR17", "Apr'17", 15, 309_000, 358.6, 351.2, 327.9, 131.5, 2.73),
    PaperEventRow("EV-MAY19", "May'19", 18, 361_000, 439.5, 392.6, 378.9, 155.3, 2.83),
    PaperEventRow("EV-JUL19B", "Jul'19", 19, 384_000, 483.7, 426.0, 412.2, 168.1, 2.88),
)


def paper_row(event_id: str) -> PaperEventRow:
    """Table I row for one catalog event."""
    for row in PAPER_TABLE1:
        if row.event_id == event_id:
            return row
    raise KeyError(f"no Table I row for {event_id!r}")


#: §VII-B / Fig. 11 per-stage speedups of the fully-parallelized
#: implementation on the largest event (19 files, 384k points).
PAPER_STAGE_SPEEDUPS: dict[str, float] = {
    "I-II": 2.2,
    "III": 1.8,
    "IV": 2.0,
    "V": 1.7,
    "VI": 2.6,
    "VIII": 1.9,
    "IX": 5.14,
    "X": 1.5,
    "XI": 2.1,
}

#: Fig. 11: stage IX accounts for 57.2% of the sequential-original
#: execution time of the largest event.
PAPER_STAGE_IX_SHARE: float = 0.572

#: §VII-C: average throughput of the original sequential version.
PAPER_SEQ_POINTS_PER_SECOND: float = 800.0

#: §VII-C: throughput band of the fully-parallelized version.
PAPER_PAR_POINTS_PER_SECOND: tuple[float, float] = (1_700.0, 2_300.0)

#: Calibration anchor event (the only event whose numbers the cost
#: model may consume).
CALIBRATION_EVENT_ID: str = "EV-JUL19B"
