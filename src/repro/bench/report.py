"""Plain-text table formatting for benchmark reports."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table (right-aligned numeric cells)."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def comparison_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """A titled table used by the per-experiment reports."""
    body = format_table(headers, rows)
    return f"{title}\n{body}" if title else body


def relative_error(measured: float, reference: float) -> float:
    """Signed relative deviation of a measurement from its reference."""
    if reference == 0:
        return 0.0 if measured == 0 else float("inf")
    return (measured - reference) / reference
