"""Physical units used in strong-motion processing.

The legacy pipeline works in CGS units throughout: accelerations in
gal (cm/s^2), velocities in cm/s and displacements in cm.  Spectra are
reported against period in seconds.  This module centralizes the
conversion constants so no magic numbers appear in processing code.
"""

from __future__ import annotations

import numpy as np

#: Standard gravity in gal (cm/s^2).
G_GAL: float = 980.665

#: Standard gravity in m/s^2.
G_SI: float = 9.80665

#: One gal expressed in m/s^2.
GAL_TO_SI: float = 0.01

#: One m/s^2 expressed in gal.
SI_TO_GAL: float = 100.0


def gal_to_g(acc_gal: np.ndarray | float) -> np.ndarray | float:
    """Convert acceleration from gal to units of standard gravity."""
    return np.asarray(acc_gal) / G_GAL if isinstance(acc_gal, np.ndarray) else acc_gal / G_GAL


def g_to_gal(acc_g: np.ndarray | float) -> np.ndarray | float:
    """Convert acceleration from units of standard gravity to gal."""
    return np.asarray(acc_g) * G_GAL if isinstance(acc_g, np.ndarray) else acc_g * G_GAL


def gal_to_si(acc_gal: np.ndarray | float) -> np.ndarray | float:
    """Convert acceleration from gal to m/s^2."""
    return acc_gal * GAL_TO_SI


def si_to_gal(acc_si: np.ndarray | float) -> np.ndarray | float:
    """Convert acceleration from m/s^2 to gal."""
    return acc_si * SI_TO_GAL


def period_to_frequency(period_s: np.ndarray | float) -> np.ndarray | float:
    """Convert period in seconds to frequency in Hz (element-wise)."""
    return 1.0 / np.asarray(period_s) if isinstance(period_s, np.ndarray) else 1.0 / period_s


def frequency_to_period(freq_hz: np.ndarray | float) -> np.ndarray | float:
    """Convert frequency in Hz to period in seconds (element-wise)."""
    return 1.0 / np.asarray(freq_hz) if isinstance(freq_hz, np.ndarray) else 1.0 / freq_hz


def angular_frequency(freq_hz: np.ndarray | float) -> np.ndarray | float:
    """Convert frequency in Hz to angular frequency in rad/s."""
    return 2.0 * np.pi * freq_hz
