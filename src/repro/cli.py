"""Command-line entry points.

``repro-process``
    Run one of the four pipeline implementations against a workspace,
    optionally generating a synthetic event dataset first.

``repro-bench``
    Regenerate the paper's evaluation artifacts (Table I, Figures
    11–13, the ablations) in model mode, or run the measured-mode
    wall-clock comparison.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core import RunContext
from repro.core.context import ParallelSettings
from repro.engine import pipeline_factory, policy_names
from repro.parallel.backend import Backend
from repro.spectra.response import ResponseSpectrumConfig, default_periods


def _build_process_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-process",
        description="Process a directory of V1 strong-motion records.",
    )
    parser.add_argument("workspace", help="workspace directory (input/ holds the .v1 files)")
    parser.add_argument(
        "--policy",
        "--implementation",
        "-i",
        dest="policy",
        default="full-parallel",
        choices=policy_names(),
        help="scheduling policy to run (--implementation is the deprecated "
        "alias; choices come from the engine's policy registry)",
    )
    parser.add_argument(
        "--generate-event",
        metavar="EVENT_ID",
        help="generate this catalog event's synthetic dataset into input/ first",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0, help="size scale for --generate-event"
    )
    parser.add_argument("--workers", type=int, default=None, help="parallel worker count")
    parser.add_argument(
        "--backend",
        default=Backend.THREAD.value,
        choices=[backend.value for backend in Backend],
        help="backend for the parallel implementations",
    )
    parser.add_argument(
        "--periods", type=int, default=100, help="response-spectrum period count"
    )
    parser.add_argument(
        "--config",
        metavar="FILE.JSON",
        help="run-configuration file (overrides --periods/--backend/--workers)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE.JSON",
        help="record a span trace of the run and write it as Chrome Trace "
        "Event JSON (open in chrome://tracing or ui.perfetto.dev)",
    )
    parser.add_argument(
        "--profile",
        metavar="FILE.JSON",
        help="sample the run with the cross-process profiler and write the "
        "merged flamegraph as speedscope JSON (open at speedscope.app); "
        "per-stage top frames are also folded into --trace output",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help="record every artifact access during the run and cross-check "
        "the logs against the registry declarations afterwards "
        "(exit 1 on undeclared or conflicting accesses)",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help="collect run metrics (chunks, tasks, I/O bytes, data points) "
        "and write them to FILE as Prometheus text plus a .json sibling",
    )
    parser.add_argument(
        "--inject-faults",
        metavar="PLAN.JSON",
        help="run under this fault plan (see repro.resilience): inject its "
        "faults, retry transient failures, quarantine poisoned records, and "
        "report the degraded result instead of aborting",
    )
    parser.add_argument(
        "--events",
        action="store_true",
        help="stream live lifecycle/telemetry events to the workspace's "
        ".events/ log while the run executes (tail with repro-top)",
    )
    parser.add_argument(
        "--ledger",
        metavar="DB",
        help="append the finished run to this SQLite run ledger "
        "(inspect with repro-ledger; $REPRO_LEDGER auto-appends too)",
    )
    parser.add_argument(
        "--report",
        metavar="FILE.HTML",
        help="write a self-contained HTML run report (Gantt, stage times, "
        "critical path, metrics); implies --trace recording",
    )
    return parser


def main_process(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-process``."""
    args = _build_process_parser().parse_args(argv)
    if args.config:
        from repro.core.config_io import context_from_config, load_config

        ctx = context_from_config(args.workspace, load_config(args.config))
    else:
        ctx = RunContext.for_directory(
            args.workspace,
            response_config=ResponseSpectrumConfig(periods=default_periods(args.periods)),
            parallel=ParallelSettings.uniform(args.backend, num_workers=args.workers),
        )
    if args.trace or args.profile or args.report:
        from repro.observability.tracer import Tracer

        # The profiler attributes samples through the tracer's open
        # spans, so --profile turns tracing on even without --trace;
        # the HTML report needs the trace for its Gantt and critpath.
        ctx.tracer = Tracer()
    if args.profile:
        from repro.observability.profiling import SamplingProfiler

        ctx.profiler = SamplingProfiler()
    if args.metrics:
        from repro.observability.metrics import MetricsRegistry

        ctx.metrics = MetricsRegistry()
    if args.generate_event:
        from repro.bench.workloads import materialize, scaled_workload
        from repro.synth.events import paper_event

        event = paper_event(args.generate_event)
        workload = scaled_workload(event, args.scale) if args.scale < 1.0 else None
        if workload is None:
            from repro.synth.dataset import generate_event_dataset

            generate_event_dataset(event, ctx.workspace.input_dir)
        else:
            materialize(event, workload, ctx.workspace.input_dir)
    if args.audit:
        ctx.audit = True
    if args.inject_faults:
        from repro.resilience import FaultPlan

        ctx.resilience = FaultPlan.load(args.inject_faults)
    if args.events:
        ctx.events = True
    impl = pipeline_factory(args.policy)()
    resources = None
    if args.trace:
        from repro.observability.resources import ResourceSampler

        sampler = ResourceSampler(tracer=ctx.tracer)
        with sampler:
            result = impl.run(ctx)
        resources = sampler.log() if len(sampler.log()) else None
    else:
        result = impl.run(ctx)
    for line in result.summary_lines():
        print(line)
    if result.quarantine:
        print(f"\ndegraded run: {len(result.quarantine)} record(s) quarantined")
        for report in sorted(result.quarantine, key=lambda r: r.record):
            print(f"  {report.describe()}")
    if args.trace and result.trace is not None:
        from repro.observability.export import write_chrome_trace

        write_chrome_trace(
            args.trace, result.trace, resources=resources, profile=result.profile
        )
        print(f"trace written to {args.trace}")
    if args.profile and result.profile is not None:
        from repro.observability.profiling import write_speedscope

        write_speedscope(args.profile, result.profile, name=args.policy)
        print(
            f"profile written to {args.profile} "
            f"({result.profile.total_samples} samples, "
            f"{result.profile.attributed_fraction():.0%} span-attributed)"
        )
    if args.metrics:
        from repro.observability.export import write_metrics

        text_path, json_path = write_metrics(args.metrics, ctx.metrics, trace=result.trace)
        print(f"metrics written to {text_path} and {json_path}")
    if args.ledger:
        from repro.observability.ledger import RunLedger, run_entry

        row_id = RunLedger(args.ledger).append(
            run_entry(ctx, result, event_id=args.generate_event)
        )
        print(f"ledger: appended run {row_id} to {args.ledger}")
    if args.report:
        from repro.observability.report_html import write_html_report
        from repro.parallel.backend import resolve_workers

        out = write_html_report(
            args.report, result, metrics=ctx.metrics,
            workers=resolve_workers(args.workers),
            title=f"{Path(args.workspace).name} — {args.policy} ({args.backend})",
        )
        print(f"report written to {out}")
    if args.audit:
        from repro.analysis.audit import audit_findings
        from repro.analysis.model import ERROR, Report

        root = ctx.workspace.root
        stations = sorted(p.stem for p in ctx.workspace.input_dir.glob("*.v1"))
        report = Report()
        report.extend(audit_findings(root, stations))
        print(report.render())
        if any(f.severity == ERROR for f in report.findings):
            return 1
    return 0


def _build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's evaluation tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=(
            "table1", "figure11", "figure12", "figure13", "ablation",
            "measured", "schedule", "pipeline-map",
        ),
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--scale", type=float, default=0.02, help="workload scale for 'measured'"
    )
    parser.add_argument(
        "--all-events",
        action="store_true",
        help="'measured' only: run all six catalog events, not just the smallest",
    )
    parser.add_argument(
        "--render",
        metavar="OUT.PS",
        help="additionally render the figure (or schedule Gantt) as PostScript",
    )
    parser.add_argument(
        "--implementation",
        default="full-parallel",
        help="implementation for 'schedule' rendering",
    )
    return parser


def main_bench(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-bench``."""
    args = _build_bench_parser().parse_args(argv)
    if args.experiment == "table1":
        from repro.bench.table1 import render_table1, table1_model

        print("Table I (model mode; 'paper' columns are the published values)")
        print(render_table1(table1_model()))
    elif args.experiment == "figure11":
        from repro.bench.figure11 import figure11_model, render_figure11

        rows = figure11_model()
        print("Figure 11 (per-stage, largest event, model mode)")
        print(render_figure11(rows))
        if args.render:
            from repro.bench.render import render_figure11_ps

            render_figure11_ps(args.render, rows)
            print(f"rendered {args.render}")
    elif args.experiment == "figure12":
        from repro.bench.figure12 import figure12_model, render_figure12

        series = figure12_model()
        print("Figure 12 (per-event grouped times, model mode)")
        print(render_figure12(series))
        if args.render:
            from repro.bench.render import render_figure12_ps

            render_figure12_ps(args.render, series)
            print(f"rendered {args.render}")
    elif args.experiment == "figure13":
        from repro.bench.figure13 import figure13_model, render_figure13

        rows = figure13_model()
        print("Figure 13 (speedup and throughput vs problem size, model mode)")
        print(render_figure13(rows))
        if args.render:
            from repro.bench.render import render_figure13_ps

            render_figure13_ps(args.render, rows)
            print(f"rendered {args.render}")
    elif args.experiment == "schedule":
        from repro.bench.render import render_schedule_ps

        out = args.render or "schedule.ps"
        render_schedule_ps(out, implementation=args.implementation)
        print(f"rendered {out}")
    elif args.experiment == "pipeline-map":
        from repro.core.pipeline_map import render_pipeline_map

        print(render_pipeline_map())
    elif args.experiment == "ablation":
        from repro.bench.ablation import (
            amdahl_bound,
            sweep_io_capacity,
            sweep_machines,
            sweep_staging_cost,
            sweep_workers,
        )
        from repro.bench.report import format_table

        for label, sweep in (
            ("workers", sweep_workers()),
            ("io_capacity", sweep_io_capacity()),
            ("staging cost multiplier", sweep_staging_cost()),
        ):
            print(f"\nAblation: {label}")
            print(
                format_table(
                    ("value", "full-par (s)", "speedup"),
                    [(p.value, p.full_parallel_s, f"{p.speedup:.2f}x") for p in sweep],
                )
            )
        print("\nAblation: machine presets (full-parallel / wavefront)")
        full = sweep_machines()
        wavefront = sweep_machines(implementation="wavefront-parallel")
        print(
            format_table(
                ("machine", "LPs", "full-par", "wavefront"),
                [
                    (name, int(p.value), f"{p.speedup:.2f}x",
                     f"{wavefront[name].speedup:.2f}x")
                    for name, p in full.items()
                ],
            )
        )
        print(f"\nCritical-path (infinite workers) speedup bound: {amdahl_bound():.2f}x")
    elif args.experiment == "measured":
        if args.all_events:
            from repro.bench.measured_table import measured_table, render_measured_table

            rows = measured_table(scale=args.scale)
            print(f"Measured mode, all six events at scale {args.scale:g} "
                  f"(real wall-clock on this machine)")
            print(render_measured_table(rows))
        else:
            from repro.bench.harness import measure_implementations
            from repro.bench.report import format_table
            from repro.synth.events import PAPER_EVENTS

            row = measure_implementations(PAPER_EVENTS[0], scale=args.scale)
            print(
                f"Measured mode ({row.event_id}: {row.n_files} files, "
                f"{row.total_points} points)"
            )
            print(
                format_table(
                    ("implementation", "wall s"),
                    [(name, t) for name, t in row.times_s.items()],
                )
            )
            print(f"end-to-end speedup on this machine: {row.speedup:.2f}x")
    return 0


def _build_bulletin_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bulletin",
        description="Batch-process an event catalog into a bulletin.",
    )
    parser.add_argument(
        "catalog",
        help="event catalog file (OANT EVENT CATALOG format), or 'paper' "
        "for the built-in six-event Table I catalog",
    )
    parser.add_argument("--root", default="bulletin-run", help="workspace root directory")
    parser.add_argument("--scale", type=float, default=1.0, help="dataset size scale")
    parser.add_argument(
        "--policy",
        "--implementation",
        "-i",
        dest="policy",
        default="wavefront-parallel",
        choices=policy_names(),
        help="scheduling policy to use (--implementation is the deprecated "
        "alias)",
    )
    parser.add_argument("--periods", type=int, default=100, help="response-spectrum periods")
    parser.add_argument("--workers", type=int, default=None, help="parallel workers")
    parser.add_argument("--out", help="also write the bulletin to this file")
    parser.add_argument("--title", default="Seismic activity bulletin", help="bulletin title")
    parser.add_argument(
        "--trace",
        metavar="FILE.JSON",
        help="record one span trace across all events (Chrome Trace Event JSON)",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help="collect metrics across all events and write them to FILE as "
        "Prometheus text plus a .json sibling",
    )
    parser.add_argument(
        "--events",
        action="store_true",
        help="stream live telemetry per event workspace (tail the current "
        "event's <root>/<event>/.events log with repro-top)",
    )
    return parser


def main_bulletin(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-bulletin``."""
    args = _build_bulletin_parser().parse_args(argv)
    from repro.core.batch import BatchRunner
    from repro.synth.events import PAPER_EVENTS, read_catalog

    events = list(PAPER_EVENTS) if args.catalog == "paper" else read_catalog(args.catalog)
    tracer = None
    if args.trace:
        from repro.observability.tracer import Tracer

        tracer = Tracer()
    metrics = None
    if args.metrics:
        from repro.observability.metrics import MetricsRegistry

        metrics = MetricsRegistry()
    runner = BatchRunner(
        implementation=pipeline_factory(args.policy)(),
        root=Path(args.root),
        scale=args.scale,
        response_config=ResponseSpectrumConfig(periods=default_periods(args.periods)),
        parallel=ParallelSettings(num_workers=args.workers),
        tracer=tracer,
        metrics=metrics,
        events=args.events,
    )
    bulletin = runner.run(events, title=args.title)
    print(bulletin.render())
    if args.out:
        bulletin.write(args.out)
        print(f"\nbulletin written to {args.out}")
    if tracer is not None:
        from repro.observability.export import write_chrome_trace

        write_chrome_trace(args.trace, tracer.trace())
        print(f"trace written to {args.trace}")
    if metrics is not None:
        from repro.observability.export import write_metrics

        trace = tracer.trace() if tracer is not None else None
        text_path, json_path = write_metrics(args.metrics, metrics, trace=trace)
        print(f"metrics written to {text_path} and {json_path}")
    return 0


def _build_chaos_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description="Seeded fault-injection soak: assert that clean runs stay "
        "byte-identical and that faulty runs converge to the same quarantine "
        "set, retry counts and degraded text on every implementation and "
        "backend.",
    )
    parser.add_argument("--root", default="chaos-run", help="soak workspace root directory")
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[1, 2],
        help="fault-plan seeds to soak (one faulty matrix pass each)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.02, help="dataset size scale of the soak event"
    )
    parser.add_argument(
        "--faults", type=int, default=2, help="faults per randomized plan"
    )
    parser.add_argument("--workers", type=int, default=2, help="parallel worker count")
    parser.add_argument(
        "--policies",
        "--implementations",
        dest="implementations",
        nargs="+",
        default=None,
        metavar="NAME",
        help="scheduling policies to soak (default: the paper's four; "
        "--implementations is the deprecated alias)",
    )
    return parser


def main_chaos(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-chaos``."""
    args = _build_chaos_parser().parse_args(argv)
    from repro.resilience.chaos import chaos_soak

    report = chaos_soak(
        args.root,
        args.seeds,
        scale=args.scale,
        n_faults=args.faults,
        implementations=args.implementations,
        workers=args.workers,
    )
    print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(main_bench())
