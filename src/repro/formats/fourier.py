"""F (Fourier spectrum) files.

A ``<station><comp>.f`` file stores the Fourier amplitude spectra of
the corrected acceleration, velocity and displacement against period in
seconds (the paper plots them that way — Fig. 3).  Process P7 writes
these; P9 plots them and P10 reads the *velocity* spectrum to locate
the FPL/FSL inflection point.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import DataBlockError
from repro.formats.common import (
    Header,
    as_path,
    block_line_count,
    format_fixed_block,
    parse_fixed_block,
    parse_header,
    read_lines,
)

_SPECTRA = ("ACCELERATION", "VELOCITY", "DISPLACEMENT")


@dataclass
class FourierRecord:
    """Fourier amplitude spectra of one corrected component.

    ``periods`` are seconds, ascending; each spectrum is the amplitude
    at the matching period (A in gal*s, V in cm, D in cm*s).
    """

    header: Header
    periods: np.ndarray
    acceleration: np.ndarray
    velocity: np.ndarray
    displacement: np.ndarray

    def __post_init__(self) -> None:
        self.periods = np.asarray(self.periods, dtype=float)
        self.acceleration = np.asarray(self.acceleration, dtype=float)
        self.velocity = np.asarray(self.velocity, dtype=float)
        self.displacement = np.asarray(self.displacement, dtype=float)
        n = self.periods.shape[0]
        for name, arr in self.spectra.items():
            if arr.shape[0] != n:
                raise DataBlockError(
                    f"fourier record {self.header.station}{self.header.component}: "
                    f"{name} spectrum length {arr.shape[0]} != periods length {n}"
                )
        self.header.npts = int(n)

    @property
    def spectra(self) -> dict[str, np.ndarray]:
        """A/V/D spectra keyed by their block names."""
        return {
            "ACCELERATION": self.acceleration,
            "VELOCITY": self.velocity,
            "DISPLACEMENT": self.displacement,
        }


def component_f_name(station: str, comp: str) -> str:
    """File name of a Fourier spectrum file: ``<station><comp>.f``."""
    return f"{station}{comp}.f"


def write_fourier(path: Path | str, record: FourierRecord) -> None:
    """Write a Fourier spectrum file."""
    parts = record.header.lines("FOURIER SPECTRA")
    parts.append("DATA")
    parts.append(f"SERIES-BLOCK: PERIOD {record.periods.shape[0]}")
    parts.append(format_fixed_block(record.periods).rstrip("\n"))
    for name in _SPECTRA:
        values = record.spectra[name]
        parts.append(f"SERIES-BLOCK: {name} {values.shape[0]}")
        parts.append(format_fixed_block(values).rstrip("\n"))
    as_path(path).write_text("\n".join(parts) + "\n")


def read_fourier(path: Path | str, *, process: str | None = None) -> FourierRecord:
    """Read a Fourier spectrum file."""
    lines = read_lines(path, process=process)
    header, i = parse_header(lines, "FOURIER SPECTRA", path=str(path))
    blocks: dict[str, np.ndarray] = {}
    while i < len(lines):
        line = lines[i].strip()
        i += 1
        if not line:
            continue
        if not line.startswith("SERIES-BLOCK:"):
            raise DataBlockError(f"{path}: expected SERIES-BLOCK, got {line!r}")
        try:
            _, _, payload = line.partition(":")
            name, count_txt = payload.split()
            count = int(count_txt)
        except ValueError as exc:
            raise DataBlockError(f"{path}: malformed series block header {line!r}") from exc
        nlines = block_line_count(count)
        blocks[name] = parse_fixed_block(lines[i : i + nlines], count, path=str(path))
        i += nlines
    missing = [name for name in ("PERIOD", *_SPECTRA) if name not in blocks]
    if missing:
        raise DataBlockError(f"{path}: missing blocks {missing}")
    return FourierRecord(
        header=header,
        periods=blocks["PERIOD"],
        acceleration=blocks["ACCELERATION"],
        velocity=blocks["VELOCITY"],
        displacement=blocks["DISPLACEMENT"],
    )
