"""File lists and plotting metadata files.

P1 writes ``v1files.lst`` — the canonical list of raw station files the
run will process.  P5/P8/P17 derive *metadata* files from it
(``accgraph.meta``, ``fourier.meta``, ``response.meta``,
``fouriergraph.meta``, ``responsegraph.meta``): each names the stage it
drives and lists the per-trace files that stage must visit.  Every
later stage learns its work list from one of these files rather than by
globbing, exactly like the legacy implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.errors import FormatError, MissingArtifactError
from repro.formats.common import as_path


def write_filelist(path: Path | str, names: list[str]) -> None:
    """Write a plain file list (one name per line under a banner)."""
    parts = ["OANT FILE LIST", f"COUNT {len(names)}"]
    parts.extend(names)
    as_path(path).write_text("\n".join(parts) + "\n")


def read_filelist(path: Path | str, *, process: str | None = None) -> list[str]:
    """Read a plain file list."""
    path = as_path(path)
    if not path.exists():
        raise MissingArtifactError(str(path), process)
    lines = path.read_text().splitlines()
    if not lines or lines[0].strip() != "OANT FILE LIST":
        raise FormatError(f"{path}: not a file list")
    try:
        count = int(lines[1].split()[1])
    except (IndexError, ValueError) as exc:
        raise FormatError(f"{path}: malformed COUNT line") from exc
    names = [line.strip() for line in lines[2:] if line.strip()]
    if len(names) != count:
        raise FormatError(f"{path}: COUNT says {count} names, found {len(names)}")
    return names


@dataclass
class MetadataFile:
    """A stage's work list: purpose tag plus per-entry file names.

    ``entries`` is a list of rows; each row is a tuple of file names
    the stage consumes together (e.g. the three component files of one
    station for a plotting stage).
    """

    purpose: str
    entries: list[tuple[str, ...]]


def write_metadata(path: Path | str, meta: MetadataFile) -> None:
    """Write a stage metadata file."""
    parts = ["OANT STAGE METADATA", f"PURPOSE {meta.purpose}", f"COUNT {len(meta.entries)}"]
    for entry in meta.entries:
        parts.append(" ".join(entry))
    as_path(path).write_text("\n".join(parts) + "\n")


def read_metadata(path: Path | str, *, process: str | None = None) -> MetadataFile:
    """Read a stage metadata file."""
    path = as_path(path)
    if not path.exists():
        raise MissingArtifactError(str(path), process)
    lines = path.read_text().splitlines()
    if not lines or lines[0].strip() != "OANT STAGE METADATA":
        raise FormatError(f"{path}: not a stage metadata file")
    try:
        purpose = lines[1].split(maxsplit=1)[1]
        count = int(lines[2].split()[1])
    except (IndexError, ValueError) as exc:
        raise FormatError(f"{path}: malformed metadata header") from exc
    entries = [tuple(line.split()) for line in lines[3:] if line.strip()]
    if len(entries) != count:
        raise FormatError(f"{path}: COUNT says {count} entries, found {len(entries)}")
    return MetadataFile(purpose=purpose, entries=entries)
