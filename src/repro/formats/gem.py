"""GEM (Global Earthquake Model) input files.

Process P19 explodes each component's V2 and R files into single-series
files consumed by downstream GEM tooling: for every (station,
component) it writes six files —

- ``<s><c>2A.gem`` / ``2V`` / ``2D``: corrected acceleration, velocity
  and displacement time series (from the V2 file);
- ``<s><c>RA.gem`` / ``RV`` / ``RD``: 5%-damped SA/SV/SD response
  spectra (from the R file).

That is 18 files per station, matching the paper's "18 GEM files".
Each file is deliberately minimal: a two-line header and one fixed
block, because the GEM consumers are column readers.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import DataBlockError, HeaderError, MissingArtifactError
from repro.formats.common import as_path, format_fixed_block, parse_fixed_block

#: Source codes: "2" = V2 time series, "R" = response spectrum.
GEM_SOURCES: tuple[str, str] = ("2", "R")

#: Quantity codes: acceleration, velocity, displacement.
GEM_QUANTITIES: tuple[str, str, str] = ("A", "V", "D")


@dataclass
class GemSeries:
    """One GEM series: abscissa metadata plus a single value column.

    For time series, ``abscissa`` is the sample interval dt; for
    response spectra the values are paired with the period grid emitted
    in the companion block.
    """

    station: str
    component: str
    source: str
    quantity: str
    abscissa: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.source not in GEM_SOURCES:
            raise HeaderError(f"GEM source must be one of {GEM_SOURCES}, got {self.source!r}")
        if self.quantity not in GEM_QUANTITIES:
            raise HeaderError(
                f"GEM quantity must be one of {GEM_QUANTITIES}, got {self.quantity!r}"
            )
        self.abscissa = np.asarray(self.abscissa, dtype=float)
        self.values = np.asarray(self.values, dtype=float)
        if self.abscissa.shape != self.values.shape:
            raise DataBlockError(
                f"GEM series {self.station}{self.component}{self.source}{self.quantity}: "
                "abscissa and values must have equal shape"
            )


def gem_name(station: str, comp: str, source: str, quantity: str) -> str:
    """File name of a GEM series: ``<station><comp><source><quantity>.gem``."""
    return f"{station}{comp}{source}{quantity}.gem"


def write_gem(path: Path | str, series: GemSeries) -> None:
    """Write a GEM series file."""
    n = series.values.shape[0]
    parts = [
        f"GEM {series.station} {series.component} {series.source} {series.quantity} {n}",
        "ABSCISSA VALUE",
    ]
    interleaved = np.empty(2 * n)
    interleaved[0::2] = series.abscissa
    interleaved[1::2] = series.values
    parts.append(format_fixed_block(interleaved).rstrip("\n"))
    as_path(path).write_text("\n".join(parts) + "\n")


def read_gem(path: Path | str, *, process: str | None = None) -> GemSeries:
    """Read a GEM series file."""
    path = as_path(path)
    if not path.exists():
        raise MissingArtifactError(str(path), process)
    lines = path.read_text().splitlines()
    if len(lines) < 2 or not lines[0].startswith("GEM "):
        raise HeaderError(f"{path}: not a GEM series file")
    try:
        _, station, comp, source, quantity, count_txt = lines[0].split()
        n = int(count_txt)
    except ValueError as exc:
        raise HeaderError(f"{path}: malformed GEM banner {lines[0]!r}") from exc
    interleaved = parse_fixed_block(lines[2:], 2 * n, path=str(path))
    return GemSeries(
        station=station,
        component=comp,
        source=source,
        quantity=quantity,
        abscissa=interleaved[0::2],
        values=interleaved[1::2],
    )
