"""Strong-motion file formats.

The legacy pipeline communicates exclusively through files; every
process reads and writes the formats defined here.  The layout is an
ASCII, Fortran-style fixed-width family ("OANT" formats) modeled on the
classic SMC/V1–V2 strong-motion conventions the paper describes:

========  ==========================================================
suffix    contents
========  ==========================================================
``.v1``   raw (uncorrected) record — all three components
``<c>.v1``one component of a raw record (output of P3)
``.v2``   corrected record — acceleration, velocity, displacement
``.f``    Fourier amplitude spectra of A/V/D vs period
``.r``    elastic response spectra (SA/SV/SD × dampings × periods)
``.gem``  single-series Global Earthquake Model input file
``.par``  band-pass filter parameters (defaults or per-component)
``.lst``  file list; ``.meta`` metadata/filelist for plotting stages
========  ==========================================================
"""

from repro.formats.common import (
    COMPONENTS,
    COMPONENT_NAMES,
    Header,
    format_fixed_block,
    parse_fixed_block,
    read_lines,
)
from repro.formats.v1 import (
    RawRecord,
    ComponentRecord,
    write_v1,
    read_v1,
    write_component_v1,
    read_component_v1,
    component_v1_name,
)
from repro.formats.v2 import (
    CorrectedRecord,
    write_v2,
    read_v2,
    component_v2_name,
)
from repro.formats.fourier import (
    FourierRecord,
    write_fourier,
    read_fourier,
    component_f_name,
)
from repro.formats.response import (
    ResponseRecord,
    write_response,
    read_response,
    component_r_name,
)
from repro.formats.gem import (
    GemSeries,
    write_gem,
    read_gem,
    gem_name,
    GEM_QUANTITIES,
    GEM_SOURCES,
)
from repro.formats.params import (
    FilterParams,
    write_filter_params,
    read_filter_params,
)
from repro.formats.filelist import (
    write_filelist,
    read_filelist,
    write_metadata,
    read_metadata,
    MetadataFile,
)

__all__ = [
    "COMPONENTS",
    "COMPONENT_NAMES",
    "Header",
    "format_fixed_block",
    "parse_fixed_block",
    "read_lines",
    "RawRecord",
    "ComponentRecord",
    "write_v1",
    "read_v1",
    "write_component_v1",
    "read_component_v1",
    "component_v1_name",
    "CorrectedRecord",
    "write_v2",
    "read_v2",
    "component_v2_name",
    "FourierRecord",
    "write_fourier",
    "read_fourier",
    "component_f_name",
    "ResponseRecord",
    "write_response",
    "read_response",
    "component_r_name",
    "GemSeries",
    "write_gem",
    "read_gem",
    "gem_name",
    "GEM_QUANTITIES",
    "GEM_SOURCES",
    "FilterParams",
    "write_filter_params",
    "read_filter_params",
    "write_filelist",
    "read_filelist",
    "write_metadata",
    "read_metadata",
    "MetadataFile",
]
