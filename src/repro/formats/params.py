"""Filter-parameter files.

Two generations exist in a pipeline run:

- ``filter.par`` — written by P2 with the default corners used for the
  first correction pass (P4);
- ``filter_corrected.par`` — written by P10 with the record-specific
  FPL/FSL corners recovered from the velocity Fourier spectra, consumed
  by the definitive correction (P13).

Both use the same format: a DEFAULT line plus zero or more per-
(station, component) override lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.dsp.fir import BandPassSpec
from repro.errors import FormatError, MissingArtifactError
from repro.formats.common import as_path


@dataclass
class FilterParams:
    """Default band-pass corners plus per-component overrides.

    ``overrides`` maps ``(station, component)`` to the corner spec that
    the definitive correction must use for that trace.
    """

    default: BandPassSpec
    overrides: dict[tuple[str, str], BandPassSpec] = field(default_factory=dict)

    def spec_for(self, station: str, comp: str) -> BandPassSpec:
        """Corners for one trace: its override if present, else the default."""
        return self.overrides.get((station, comp), self.default)

    def set_override(self, station: str, comp: str, spec: BandPassSpec) -> None:
        """Record the definitive corners for one trace."""
        self.overrides[(station, comp)] = spec


def _spec_fields(spec: BandPassSpec) -> str:
    return (
        f"{spec.f_stop_low:.6f} {spec.f_pass_low:.6f} "
        f"{spec.f_pass_high:.6f} {spec.f_stop_high:.6f}"
    )


def _parse_spec(tokens: list[str], path: str) -> BandPassSpec:
    try:
        fsl, fpl, fph, fsh = (float(tok) for tok in tokens)
    except ValueError as exc:
        raise FormatError(f"{path}: bad filter corner values {tokens}") from exc
    return BandPassSpec(fsl, fpl, fph, fsh)


def write_filter_params(path: Path | str, params: FilterParams) -> None:
    """Write a filter-parameter file."""
    parts = ["OANT FILTER PARAMETERS"]
    parts.append(f"DEFAULT {_spec_fields(params.default)}")
    for (station, comp) in sorted(params.overrides):
        spec = params.overrides[(station, comp)]
        parts.append(f"TRACE {station} {comp} {_spec_fields(spec)}")
    as_path(path).write_text("\n".join(parts) + "\n")


def read_filter_params(path: Path | str, *, process: str | None = None) -> FilterParams:
    """Read a filter-parameter file."""
    path = as_path(path)
    if not path.exists():
        raise MissingArtifactError(str(path), process)
    lines = path.read_text().splitlines()
    if not lines or lines[0].strip() != "OANT FILTER PARAMETERS":
        raise FormatError(f"{path}: not a filter parameter file")
    default: BandPassSpec | None = None
    overrides: dict[tuple[str, str], BandPassSpec] = {}
    for line in lines[1:]:
        tokens = line.split()
        if not tokens:
            continue
        if tokens[0] == "DEFAULT":
            if len(tokens) != 5:
                raise FormatError(f"{path}: malformed DEFAULT line {line!r}")
            default = _parse_spec(tokens[1:], str(path))
        elif tokens[0] == "TRACE":
            if len(tokens) != 7:
                raise FormatError(f"{path}: malformed TRACE line {line!r}")
            overrides[(tokens[1], tokens[2])] = _parse_spec(tokens[3:], str(path))
        else:
            raise FormatError(f"{path}: unknown parameter line {line!r}")
    if default is None:
        raise FormatError(f"{path}: missing DEFAULT corners")
    return FilterParams(default=default, overrides=overrides)
