"""Shared pieces of the OANT ASCII formats.

All record files share a key/value header section terminated by a
``DATA`` line, followed by one or more fixed-width numeric blocks.
Numbers are written as Fortran-style ``E15.7`` fields, five per line,
which round-trips float64 values to 7 significant digits — the
precision the legacy Fortran carried.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import DataBlockError, HeaderError, MissingArtifactError

#: Component codes in pipeline order: longitudinal, transversal, vertical.
COMPONENTS: tuple[str, str, str] = ("l", "t", "v")

#: Human-readable component names keyed by code.
COMPONENT_NAMES: dict[str, str] = {
    "l": "LONGITUDINAL",
    "t": "TRANSVERSAL",
    "v": "VERTICAL",
}

_FIELD_WIDTH = 15
_PER_LINE = 5
_FMT = "%15.7E"

#: :func:`repro.observability.metrics.record_points`, bound lazily —
#: the formats package is a leaf the observability package sits above.
_record_points = None


def count_points(npts: int, process: str | None = None) -> None:
    """Credit ``npts`` time-series points to the reading pipeline process.

    No-op unless the run carries a metrics registry; the ``process``
    label defaults to the active audit scope's attribution.
    """
    global _record_points
    if _record_points is None:
        from repro.observability.metrics import record_points

        _record_points = record_points
    _record_points(npts, process)


def format_fixed_block(values: np.ndarray) -> str:
    """Render a 1-D array as fixed-width E15.7 lines, 5 values per line."""
    values = np.asarray(values, dtype=float).ravel()
    if values.size == 0:
        return ""
    lines = []
    for start in range(0, values.size, _PER_LINE):
        chunk = values[start : start + _PER_LINE]
        lines.append("".join(_FMT % v for v in chunk))
    return "\n".join(lines) + "\n"


def parse_fixed_block(lines: list[str], count: int, *, path: str = "<memory>") -> np.ndarray:
    """Parse ``count`` fixed-width values from consumed text lines.

    ``lines`` must contain exactly the lines of one block (as produced
    by :func:`format_fixed_block`).
    """
    values: list[float] = []
    for line in lines:
        line = line.rstrip("\n")
        for start in range(0, len(line), _FIELD_WIDTH):
            fieldtxt = line[start : start + _FIELD_WIDTH].strip()
            if not fieldtxt:
                continue
            try:
                values.append(float(fieldtxt))
            except ValueError as exc:
                raise DataBlockError(f"{path}: bad numeric field {fieldtxt!r}") from exc
    if len(values) != count:
        raise DataBlockError(f"{path}: expected {count} values, found {len(values)}")
    return np.asarray(values, dtype=float)


def block_line_count(count: int) -> int:
    """Number of text lines a ``count``-value fixed block occupies."""
    return (count + _PER_LINE - 1) // _PER_LINE


@dataclass
class Header:
    """Common header of every OANT record file.

    Only ``station`` and ``dt`` are strictly required by the pipeline;
    the event fields carry provenance and are preserved verbatim by
    every processing step so downstream GEM consumers can trace records
    back to their event.
    """

    station: str
    component: str = ""
    event_id: str = ""
    origin_time: str = ""
    magnitude: float = 0.0
    dt: float = 0.0
    npts: int = 0
    units: str = "GAL"
    extra: dict[str, str] = field(default_factory=dict)

    def lines(self, kind: str) -> list[str]:
        """Render the header as key/value lines under a ``kind`` banner."""
        out = [f"OANT STRONG-MOTION {kind}"]
        out.append(f"STATION: {self.station}")
        if self.component:
            name = COMPONENT_NAMES.get(self.component, self.component.upper())
            out.append(f"COMPONENT: {self.component} {name}")
        out.append(f"EVENT: {self.event_id}")
        out.append(f"ORIGIN: {self.origin_time}")
        out.append(f"MAGNITUDE: {self.magnitude:.2f}")
        out.append(f"DT: {self.dt:.9f}")
        out.append(f"NPTS: {self.npts}")
        out.append(f"UNITS: {self.units}")
        for key, value in sorted(self.extra.items()):
            out.append(f"X-{key}: {value}")
        return out

    def copy_for(self, *, component: str | None = None, npts: int | None = None) -> "Header":
        """Clone the header, optionally retargeting component/npts."""
        return Header(
            station=self.station,
            component=self.component if component is None else component,
            event_id=self.event_id,
            origin_time=self.origin_time,
            magnitude=self.magnitude,
            dt=self.dt,
            npts=self.npts if npts is None else npts,
            units=self.units,
            extra=dict(self.extra),
        )


def parse_header(lines: list[str], kind: str, *, path: str = "<memory>") -> tuple[Header, int]:
    """Parse a header; returns (header, index of the line after ``DATA``).

    Raises :class:`HeaderError` when the banner is wrong or a required
    field is missing/unparseable.
    """
    if not lines:
        raise HeaderError(f"{path}: empty file")
    banner = lines[0].strip()
    expected = f"OANT STRONG-MOTION {kind}"
    if banner != expected:
        raise HeaderError(f"{path}: expected banner {expected!r}, got {banner!r}")
    fields: dict[str, str] = {}
    i = 1
    while i < len(lines):
        line = lines[i].strip()
        i += 1
        if line == "DATA":
            break
        if not line:
            continue
        if ":" not in line:
            raise HeaderError(f"{path}: malformed header line {line!r}")
        key, _, value = line.partition(":")
        fields[key.strip()] = value.strip()
    else:
        raise HeaderError(f"{path}: header not terminated by a DATA line")

    def need(key: str) -> str:
        if key not in fields:
            raise HeaderError(f"{path}: missing header field {key}")
        return fields[key]

    try:
        dt = float(need("DT"))
        npts = int(need("NPTS"))
        magnitude = float(fields.get("MAGNITUDE", "0"))
    except ValueError as exc:
        raise HeaderError(f"{path}: unparseable numeric header field") from exc
    component = fields.get("COMPONENT", "").split()[0] if fields.get("COMPONENT") else ""
    extra = {
        key[2:]: value for key, value in fields.items() if key.startswith("X-")
    }
    header = Header(
        station=need("STATION"),
        component=component,
        event_id=fields.get("EVENT", ""),
        origin_time=fields.get("ORIGIN", ""),
        magnitude=magnitude,
        dt=dt,
        npts=npts,
        units=fields.get("UNITS", "GAL"),
        extra=extra,
    )
    return header, i


def as_path(path: Path | str) -> Path:
    """Coerce to :class:`Path` while preserving Path subclasses.

    Readers and writers must not rebuild incoming paths with
    ``Path(...)``: that would strip the auditing subclass the workspace
    hands out when access recording is enabled.
    """
    return path if isinstance(path, Path) else Path(path)


def read_lines(path: Path | str, *, process: str | None = None) -> list[str]:
    """Read a text file into lines, raising MissingArtifactError if absent."""
    path = as_path(path)
    if not path.exists():
        raise MissingArtifactError(str(path), process)
    return path.read_text().splitlines()
