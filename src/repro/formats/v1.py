"""V1 (uncorrected) record files.

A station's ``<station>.v1`` file holds the raw acceleration time
series of all three components as recorded by the accelerograph.
Process P3 splits it into per-component ``<station><comp>.v1`` files,
which are what the correction processes consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import DataBlockError, HeaderError
from repro.formats.common import (
    COMPONENTS,
    Header,
    as_path,
    block_line_count,
    count_points as _count_points,
    format_fixed_block,
    parse_fixed_block,
    parse_header,
    read_lines,
)


@dataclass
class ComponentRecord:
    """One uncorrected component: header plus raw acceleration (gal)."""

    header: Header
    acceleration: np.ndarray

    def __post_init__(self) -> None:
        self.acceleration = np.asarray(self.acceleration, dtype=float)
        self.header.npts = int(self.acceleration.shape[0])


@dataclass
class RawRecord:
    """A full uncorrected station record (all three components).

    ``components`` maps component code -> acceleration array; all three
    of :data:`repro.formats.common.COMPONENTS` must be present and of
    equal length (the instrument digitizes them synchronously).
    """

    header: Header
    components: dict[str, np.ndarray]

    def __post_init__(self) -> None:
        missing = [c for c in COMPONENTS if c not in self.components]
        if missing:
            raise HeaderError(f"raw record for {self.header.station} missing components {missing}")
        lengths = {c: len(self.components[c]) for c in COMPONENTS}
        if len(set(lengths.values())) != 1:
            raise DataBlockError(
                f"raw record for {self.header.station} has unequal component lengths {lengths}"
            )
        self.components = {
            c: np.asarray(self.components[c], dtype=float) for c in COMPONENTS
        }
        self.header.npts = int(lengths["l"])

    @property
    def npts(self) -> int:
        """Samples per component."""
        return self.header.npts

    @property
    def total_points(self) -> int:
        """Total data points across all three components."""
        return 3 * self.header.npts

    def component_record(self, comp: str) -> ComponentRecord:
        """Extract one component as a standalone record."""
        if comp not in self.components:
            raise HeaderError(f"no component {comp!r} in record {self.header.station}")
        return ComponentRecord(
            header=self.header.copy_for(component=comp),
            acceleration=self.components[comp].copy(),
        )


def component_v1_name(station: str, comp: str) -> str:
    """File name of a separated component V1 file: ``<station><comp>.v1``."""
    return f"{station}{comp}.v1"


def station_of_trace(trace: str) -> str:
    """Station id of a component trace stem (``ST01l`` -> ``ST01``).

    Component suffixes are single characters (:data:`COMPONENTS`), so a
    stem that does not end in one is already a station id.
    """
    return trace[:-1] if trace and trace[-1] in COMPONENTS else trace


def write_v1(path: Path | str, record: RawRecord) -> None:
    """Write a full three-component V1 file."""
    header = record.header
    parts = header.lines("V1 UNCORRECTED")
    parts.append("DATA")
    for comp in COMPONENTS:
        values = record.components[comp]
        parts.append(f"COMPONENT-BLOCK: {comp} {values.shape[0]}")
        parts.append(format_fixed_block(values).rstrip("\n"))
    as_path(path).write_text("\n".join(parts) + "\n")


def read_v1(path: Path | str, *, process: str | None = None) -> RawRecord:
    """Read a full three-component V1 file."""
    lines = read_lines(path, process=process)
    header, i = parse_header(lines, "V1 UNCORRECTED", path=str(path))
    components: dict[str, np.ndarray] = {}
    while i < len(lines):
        line = lines[i].strip()
        i += 1
        if not line:
            continue
        if not line.startswith("COMPONENT-BLOCK:"):
            raise DataBlockError(f"{path}: expected COMPONENT-BLOCK, got {line!r}")
        try:
            _, _, payload = line.partition(":")
            comp, count_txt = payload.split()
            count = int(count_txt)
        except ValueError as exc:
            raise DataBlockError(f"{path}: malformed component block header {line!r}") from exc
        nlines = block_line_count(count)
        block = lines[i : i + nlines]
        i += nlines
        components[comp] = parse_fixed_block(block, count, path=str(path))
    record = RawRecord(header=header, components=components)
    _count_points(record.total_points, process)
    return record


def write_component_v1(path: Path | str, record: ComponentRecord) -> None:
    """Write a single-component V1 file (P3's output)."""
    parts = record.header.lines("V1 COMPONENT")
    parts.append("DATA")
    parts.append(format_fixed_block(record.acceleration).rstrip("\n"))
    as_path(path).write_text("\n".join(parts) + "\n")


def read_component_v1(path: Path | str, *, process: str | None = None) -> ComponentRecord:
    """Read a single-component V1 file."""
    lines = read_lines(path, process=process)
    header, i = parse_header(lines, "V1 COMPONENT", path=str(path))
    block = lines[i : i + block_line_count(header.npts)]
    acc = parse_fixed_block(block, header.npts, path=str(path))
    record = ComponentRecord(header=header, acceleration=acc)
    _count_points(record.header.npts, process)
    return record
