"""R (response spectrum) files.

A ``<station><comp>.r`` file stores the elastic response spectra of the
definitive corrected acceleration: spectral acceleration, pseudo-
velocity and displacement over a grid of oscillator periods, one block
per damping ratio.  Process P16 (the pipeline's dominant cost) writes
these; P18 plots them and P19 feeds them to the GEM exporter.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import DataBlockError
from repro.formats.common import (
    Header,
    as_path,
    block_line_count,
    format_fixed_block,
    parse_fixed_block,
    parse_header,
    read_lines,
)

_QUANTITIES = ("SA", "SV", "SD")


@dataclass
class ResponseRecord:
    """Elastic response spectra of one component.

    ``sa``/``sv``/``sd`` have shape ``(n_dampings, n_periods)``: SA in
    gal, SV in cm/s, SD in cm.  ``dampings`` are fractions of critical
    (e.g. 0.05).
    """

    header: Header
    periods: np.ndarray
    dampings: np.ndarray
    sa: np.ndarray
    sv: np.ndarray
    sd: np.ndarray

    def __post_init__(self) -> None:
        self.periods = np.asarray(self.periods, dtype=float)
        self.dampings = np.asarray(self.dampings, dtype=float)
        shape = (self.dampings.shape[0], self.periods.shape[0])
        for name in _QUANTITIES:
            arr = np.asarray(getattr(self, name.lower()), dtype=float)
            if arr.shape != shape:
                raise DataBlockError(
                    f"response record {self.header.station}{self.header.component}: "
                    f"{name} shape {arr.shape} != {shape}"
                )
            setattr(self, name.lower(), arr)
        self.header.npts = int(self.periods.shape[0])

    def quantity(self, name: str) -> np.ndarray:
        """Return SA/SV/SD by name (case-insensitive)."""
        key = name.lower()
        if key not in ("sa", "sv", "sd"):
            raise DataBlockError(f"unknown response quantity {name!r}")
        return getattr(self, key)


def component_r_name(station: str, comp: str) -> str:
    """File name of a response spectrum file: ``<station><comp>.r``."""
    return f"{station}{comp}.r"


def write_response(path: Path | str, record: ResponseRecord) -> None:
    """Write a response spectrum file."""
    parts = record.header.lines("RESPONSE SPECTRA")
    parts.append("DATA")
    parts.append(f"SERIES-BLOCK: PERIOD {record.periods.shape[0]}")
    parts.append(format_fixed_block(record.periods).rstrip("\n"))
    parts.append(f"SERIES-BLOCK: DAMPING {record.dampings.shape[0]}")
    parts.append(format_fixed_block(record.dampings).rstrip("\n"))
    for d_idx in range(record.dampings.shape[0]):
        for name in _QUANTITIES:
            values = record.quantity(name)[d_idx]
            parts.append(f"SERIES-BLOCK: {name}{d_idx} {values.shape[0]}")
            parts.append(format_fixed_block(values).rstrip("\n"))
    as_path(path).write_text("\n".join(parts) + "\n")


def read_response(path: Path | str, *, process: str | None = None) -> ResponseRecord:
    """Read a response spectrum file."""
    lines = read_lines(path, process=process)
    header, i = parse_header(lines, "RESPONSE SPECTRA", path=str(path))
    blocks: dict[str, np.ndarray] = {}
    while i < len(lines):
        line = lines[i].strip()
        i += 1
        if not line:
            continue
        if not line.startswith("SERIES-BLOCK:"):
            raise DataBlockError(f"{path}: expected SERIES-BLOCK, got {line!r}")
        try:
            _, _, payload = line.partition(":")
            name, count_txt = payload.split()
            count = int(count_txt)
        except ValueError as exc:
            raise DataBlockError(f"{path}: malformed series block header {line!r}") from exc
        nlines = block_line_count(count)
        blocks[name] = parse_fixed_block(lines[i : i + nlines], count, path=str(path))
        i += nlines
    if "PERIOD" not in blocks or "DAMPING" not in blocks:
        raise DataBlockError(f"{path}: missing PERIOD or DAMPING block")
    periods = blocks["PERIOD"]
    dampings = blocks["DAMPING"]
    arrays: dict[str, np.ndarray] = {}
    for name in _QUANTITIES:
        rows = []
        for d_idx in range(dampings.shape[0]):
            key = f"{name}{d_idx}"
            if key not in blocks:
                raise DataBlockError(f"{path}: missing block {key}")
            rows.append(blocks[key])
        arrays[name] = np.vstack(rows)
    return ResponseRecord(
        header=header,
        periods=periods,
        dampings=dampings,
        sa=arrays["SA"],
        sv=arrays["SV"],
        sd=arrays["SD"],
    )
