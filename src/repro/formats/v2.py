"""V2 (corrected) record files.

A ``<station><comp>.v2`` file stores the band-pass-corrected
acceleration together with the velocity and displacement obtained by
integration, plus the peak values and the filter corners that produced
it.  P4 writes a first (default-corner) V2 generation; P13 overwrites
it with the definitive FPL/FSL-corrected one.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.dsp.peak import PeakValues
from repro.errors import DataBlockError
from repro.formats.common import (
    Header,
    as_path,
    block_line_count,
    count_points as _count_points,
    format_fixed_block,
    parse_fixed_block,
    parse_header,
    read_lines,
)

_SERIES = ("ACCELERATION", "VELOCITY", "DISPLACEMENT")


@dataclass
class CorrectedRecord:
    """Corrected single-component motion with peaks and filter corners."""

    header: Header
    acceleration: np.ndarray
    velocity: np.ndarray
    displacement: np.ndarray
    peaks: PeakValues
    f_stop_low: float
    f_pass_low: float
    f_pass_high: float
    f_stop_high: float

    def __post_init__(self) -> None:
        self.acceleration = np.asarray(self.acceleration, dtype=float)
        self.velocity = np.asarray(self.velocity, dtype=float)
        self.displacement = np.asarray(self.displacement, dtype=float)
        n = self.acceleration.shape[0]
        if self.velocity.shape[0] != n or self.displacement.shape[0] != n:
            raise DataBlockError(
                f"corrected record {self.header.station}{self.header.component}: "
                "A/V/D series must have equal lengths"
            )
        self.header.npts = int(n)

    @property
    def series(self) -> dict[str, np.ndarray]:
        """A/V/D series keyed by their block names."""
        return {
            "ACCELERATION": self.acceleration,
            "VELOCITY": self.velocity,
            "DISPLACEMENT": self.displacement,
        }


def component_v2_name(station: str, comp: str) -> str:
    """File name of a corrected component file: ``<station><comp>.v2``."""
    return f"{station}{comp}.v2"


def write_v2(path: Path | str, record: CorrectedRecord) -> None:
    """Write a corrected V2 component file."""
    parts = record.header.lines("V2 CORRECTED")
    peaks = record.peaks
    parts.append(
        "PEAKS: "
        f"{peaks.pga:.7E} {peaks.pga_time:.4f} "
        f"{peaks.pgv:.7E} {peaks.pgv_time:.4f} "
        f"{peaks.pgd:.7E} {peaks.pgd_time:.4f}"
    )
    parts.append(
        "FILTER: "
        f"{record.f_stop_low:.6f} {record.f_pass_low:.6f} "
        f"{record.f_pass_high:.6f} {record.f_stop_high:.6f}"
    )
    parts.append("DATA")
    for name in _SERIES:
        values = record.series[name]
        parts.append(f"SERIES-BLOCK: {name} {values.shape[0]}")
        parts.append(format_fixed_block(values).rstrip("\n"))
    as_path(path).write_text("\n".join(parts) + "\n")


def read_v2(path: Path | str, *, process: str | None = None) -> CorrectedRecord:
    """Read a corrected V2 component file."""
    lines = read_lines(path, process=process)
    header_obj, peaks, filt, i = _parse_v2_header(lines, path=str(path))
    series: dict[str, np.ndarray] = {}
    while i < len(lines):
        line = lines[i].strip()
        i += 1
        if not line:
            continue
        if not line.startswith("SERIES-BLOCK:"):
            raise DataBlockError(f"{path}: expected SERIES-BLOCK, got {line!r}")
        try:
            _, _, payload = line.partition(":")
            name, count_txt = payload.split()
            count = int(count_txt)
        except ValueError as exc:
            raise DataBlockError(f"{path}: malformed series block header {line!r}") from exc
        nlines = block_line_count(count)
        series[name] = parse_fixed_block(lines[i : i + nlines], count, path=str(path))
        i += nlines
    missing = [name for name in _SERIES if name not in series]
    if missing:
        raise DataBlockError(f"{path}: missing series blocks {missing}")
    record = CorrectedRecord(
        header=header_obj,
        acceleration=series["ACCELERATION"],
        velocity=series["VELOCITY"],
        displacement=series["DISPLACEMENT"],
        peaks=peaks,
        f_stop_low=filt[0],
        f_pass_low=filt[1],
        f_pass_high=filt[2],
        f_stop_high=filt[3],
    )
    _count_points(3 * record.header.npts, process)
    return record


def _parse_v2_header(
    lines: list[str], *, path: str
) -> tuple[Header, PeakValues, tuple[float, float, float, float], int]:
    """Parse the V2 header plus its PEAKS and FILTER lines.

    Returns ``(header, peaks, filter_corners, index_after_DATA)`` where
    the index refers to the original ``lines`` list.
    """
    # PEAKS/FILTER appear between the banner fields and DATA; the generic
    # header parser rejects them, so pre-extract those lines.
    peaks_line = None
    filter_line = None
    cleaned: list[str] = []
    for line in lines:
        stripped = line.strip()
        if stripped.startswith("PEAKS:"):
            peaks_line = stripped
        elif stripped.startswith("FILTER:"):
            filter_line = stripped
        else:
            cleaned.append(line)
    header, i = parse_header(cleaned, "V2 CORRECTED", path=path)
    if peaks_line is None or filter_line is None:
        raise DataBlockError(f"{path}: V2 file missing PEAKS or FILTER line")
    try:
        p = [float(tok) for tok in peaks_line.partition(":")[2].split()]
        f = [float(tok) for tok in filter_line.partition(":")[2].split()]
        peaks = PeakValues(p[0], p[1], p[2], p[3], p[4], p[5])
        corners = (f[0], f[1], f[2], f[3])
    except (ValueError, IndexError) as exc:
        raise DataBlockError(f"{path}: malformed PEAKS/FILTER line") from exc
    # Index i counts lines of `cleaned`; map back to the original list
    # by skipping the two extracted lines that precede DATA.
    return header, peaks, corners, i + 2
