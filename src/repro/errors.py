"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at pipeline boundaries.  The
subclasses mirror the major failure domains of the original legacy
system: malformed record files, inconsistent pipeline state, and
misconfigured parallel runtimes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class FormatError(ReproError):
    """A strong-motion data file could not be parsed or written.

    Raised by the :mod:`repro.formats` readers when a header field is
    missing, a data block is truncated, or a numeric field does not
    parse.  The message always includes the offending path when one is
    known.
    """


class HeaderError(FormatError):
    """A record header is missing a required field or holds a bad value."""


class DataBlockError(FormatError):
    """A record's numeric data block is truncated or malformed."""


class PipelineError(ReproError):
    """A pipeline process could not run to completion."""


class MissingArtifactError(PipelineError):
    """A process's declared input file does not exist in the workspace."""

    def __init__(self, path: str, process: str | None = None) -> None:
        self.path = str(path)
        self.process = process
        where = f" (required by {process})" if process else ""
        super().__init__(f"missing pipeline artifact: {self.path}{where}")


class DependencyError(PipelineError):
    """The declared process graph is inconsistent (cycle, bad ordering)."""


class StageOrderError(DependencyError):
    """A stage plan would execute a process before one of its inputs exists."""


class VerificationError(DependencyError):
    """The graph verifier proved a pipeline plan unsafe to execute.

    Raised by ``PipelineBuilder.build(verify=True)`` and
    ``Engine(..., verify=True)`` when :mod:`repro.analysis.graphlint`
    finds error-severity problems (races, mis-declared effects,
    unordered producer/consumer pairs).  The message lists every
    counterexample the verifier produced.
    """


class TransientToolError(PipelineError):
    """A legacy-tool invocation failed in a way worth retrying.

    Raised by the tool emulations for recoverable conditions (the kind
    an operational pipeline sees as flaky NFS reads or OOM-killed
    helper processes).  The retry runtime catches this class — and only
    this class plus worker crashes — for another attempt.
    """


class RetryExhaustedError(PipelineError):
    """Every allowed attempt of a retried operation failed.

    Carries the identity of the failing unit and the attempt count so
    quarantine classification can report *why* the record was dropped.
    """

    def __init__(self, record: str, attempts: int, cause: Exception | None = None) -> None:
        self.record = str(record)
        self.attempts = int(attempts)
        self.cause = cause
        why = f": {type(cause).__name__}" if cause is not None else ""
        super().__init__(
            f"retries exhausted for {self.record} after {self.attempts} attempts{why}"
        )


class QuarantinedRecordError(PipelineError):
    """A record was removed from the run by the quarantine runtime.

    Raised when work is attempted on (or blocked by) a record that a
    prior failure already quarantined.  Carries the record id, the
    attempt count that led to quarantine, and the causing exception.
    """

    def __init__(self, record: str, attempts: int = 1, cause: Exception | None = None) -> None:
        self.record = str(record)
        self.attempts = int(attempts)
        self.cause = cause
        why = f" ({type(cause).__name__})" if cause is not None else ""
        super().__init__(
            f"record {self.record} is quarantined after {self.attempts} attempts{why}"
        )


class ParallelError(ReproError):
    """The parallel runtime was misused or a worker failed."""


class BackendError(ParallelError):
    """An unknown or unavailable execution backend was requested."""


class SchedulerError(ParallelError):
    """The simulated machine was given an unsatisfiable task graph."""


class SignalError(ReproError):
    """A DSP routine received a signal it cannot process."""


class FilterDesignError(SignalError):
    """Band-pass corner frequencies are inconsistent or out of range."""


class CalibrationError(ReproError):
    """The benchmark cost model could not be calibrated."""
