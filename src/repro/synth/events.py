"""The six-event catalog matched to the paper's experimental dataset.

Table I of the paper lists, per event, the number of V1 files and the
total data points.  :data:`PAPER_EVENTS` reproduces those exactly; the
per-file point counts are distributed deterministically inside the
7,300–35,000 range the paper quotes (§VII-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignalError

#: Per-file data-point bounds quoted in the paper (§VII-A).
MIN_FILE_POINTS: int = 7_300
MAX_FILE_POINTS: int = 35_000


@dataclass(frozen=True)
class EventSpec:
    """One seismic event of the experimental catalog."""

    event_id: str
    date: str
    magnitude: float
    n_files: int
    total_points: int
    seed: int

    def __post_init__(self) -> None:
        if self.n_files < 1:
            raise SignalError(f"event {self.event_id}: needs >= 1 file")
        if not MIN_FILE_POINTS * self.n_files <= self.total_points <= MAX_FILE_POINTS * self.n_files:
            raise SignalError(
                f"event {self.event_id}: {self.total_points} points cannot be split into "
                f"{self.n_files} files of {MIN_FILE_POINTS}-{MAX_FILE_POINTS} points"
            )

    def file_points(self) -> list[int]:
        """Deterministic per-file data-point counts summing to the total."""
        return distribute_points(
            self.total_points, self.n_files, MIN_FILE_POINTS, MAX_FILE_POINTS, self.seed
        )


def distribute_points(total: int, n: int, lo: int, hi: int, seed: int) -> list[int]:
    """Split ``total`` into ``n`` integers in [lo, hi], deterministically.

    Draws uniform proposals, rescales them to the required total, then
    repairs any bound violations by shifting the excess onto files with
    slack.  Raises :class:`SignalError` when no split exists.
    """
    if not n * lo <= total <= n * hi:
        raise SignalError(f"cannot split {total} into {n} parts within [{lo}, {hi}]")
    rng = np.random.default_rng(seed)
    raw = rng.uniform(lo, hi, n)
    scaled = raw * (total / raw.sum())
    parts = np.clip(np.round(scaled).astype(int), lo, hi)
    # Repair the rounding/clipping drift one unit at a time, spending it
    # on the entries with the most slack.
    drift = total - int(parts.sum())
    step = 1 if drift > 0 else -1
    guard = 0
    while drift != 0:
        slack = (hi - parts) if step > 0 else (parts - lo)
        idx = int(np.argmax(slack))
        if slack[idx] == 0:
            raise SignalError(f"cannot repair distribution drift for total={total}, n={n}")
        parts[idx] += step
        drift -= step
        guard += 1
        if guard > abs(total) + n * (hi - lo):
            raise SignalError("distribute_points failed to converge")
    return [int(p) for p in parts]


#: The six events of Table I: (id, date, magnitude, V1 files, data points).
PAPER_EVENTS: tuple[EventSpec, ...] = (
    EventSpec("EV-NOV18", "2018-11-24", 5.1, 5, 56_000, seed=181124),
    EventSpec("EV-APR18", "2018-04-02", 5.4, 5, 115_000, seed=180402),
    EventSpec("EV-JUL19A", "2019-07-10", 5.3, 9, 145_000, seed=190710),
    EventSpec("EV-APR17", "2017-04-10", 5.9, 15, 309_000, seed=170410),
    EventSpec("EV-MAY19", "2019-05-30", 6.2, 18, 361_000, seed=190530),
    EventSpec("EV-JUL19B", "2019-07-31", 6.0, 19, 384_000, seed=190731),
)


def paper_event(event_id: str) -> EventSpec:
    """Look up a catalog event by id (raises on unknown ids)."""
    for event in PAPER_EVENTS:
        if event.event_id == event_id:
            return event
    known = [e.event_id for e in PAPER_EVENTS]
    raise SignalError(f"unknown event {event_id!r}; catalog has {known}")


def write_catalog(path, events: "list[EventSpec] | tuple[EventSpec, ...]") -> None:
    """Write an event catalog file.

    One ``EVENT id date magnitude n_files total_points seed`` line per
    event under a banner — the input format of ``repro-bulletin``.
    """
    from pathlib import Path

    lines = ["OANT EVENT CATALOG"]
    for event in events:
        lines.append(
            f"EVENT {event.event_id} {event.date} {event.magnitude:.2f} "
            f"{event.n_files} {event.total_points} {event.seed}"
        )
    Path(path).write_text("\n".join(lines) + "\n")


def read_catalog(path) -> list[EventSpec]:
    """Read an event catalog file written by :func:`write_catalog`."""
    from pathlib import Path

    path = Path(path)
    if not path.exists():
        raise SignalError(f"catalog file not found: {path}")
    lines = path.read_text().splitlines()
    if not lines or lines[0].strip() != "OANT EVENT CATALOG":
        raise SignalError(f"{path}: not an event catalog file")
    events: list[EventSpec] = []
    for line in lines[1:]:
        tokens = line.split()
        if not tokens:
            continue
        if tokens[0] != "EVENT" or len(tokens) != 7:
            raise SignalError(f"{path}: malformed catalog line {line!r}")
        try:
            events.append(
                EventSpec(
                    event_id=tokens[1],
                    date=tokens[2],
                    magnitude=float(tokens[3]),
                    n_files=int(tokens[4]),
                    total_points=int(tokens[5]),
                    seed=int(tokens[6]),
                )
            )
        except ValueError as exc:
            raise SignalError(f"{path}: bad numeric field in {line!r}") from exc
    return events
