"""Boore-style stochastic ground-motion simulation.

One component is simulated by shaping windowed Gaussian noise to a
target Fourier amplitude spectrum: band-limited noise is windowed in
time (Saragoni–Hart), transformed, normalized to unit mean-square
amplitude, multiplied by the deterministic target spectrum (source x
path x site), and transformed back.  Each (event, station, component)
triple derives its own deterministic RNG stream, so regenerating a
catalog is reproducible file-for-file.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SignalError
from repro.synth.path import PathModel
from repro.synth.site import SiteModel
from repro.synth.source import BruneSource


def saragoni_hart_window(n: int, *, eps: float = 0.2, eta: float = 0.05) -> np.ndarray:
    """Saragoni–Hart exponential window over n samples.

    ``w(t) = a (t/tn)^b exp(-c t/tn)`` normalized to unit peak, with
    the peak at fraction ``eps`` of the duration and amplitude ``eta``
    at the end — the classic strong-motion envelope.
    """
    if n < 1:
        raise SignalError(f"window length must be >= 1, got {n}")
    if not 0 < eps < 1 or not 0 < eta < 1:
        raise SignalError("eps and eta must lie in (0, 1)")
    b = -eps * np.log(eta) / (1.0 + eps * (np.log(eps) - 1.0))
    c = b / eps
    t = np.linspace(0.0, 1.0, n)
    with np.errstate(divide="ignore", invalid="ignore"):
        w = (t / eps) ** b * np.exp(-c * (t - eps))
    w[0] = 0.0
    peak = w.max()
    return w / peak if peak > 0 else w


@dataclass
class StochasticSimulator:
    """Simulates one acceleration trace for a (source, path, site) triple."""

    source: BruneSource
    path: PathModel = field(default_factory=PathModel)
    site: SiteModel = field(default_factory=SiteModel)

    def target_spectrum(self, freqs_hz: np.ndarray, distance_km: float) -> np.ndarray:
        """Deterministic target Fourier acceleration spectrum (gal*s)."""
        freqs_hz = np.asarray(freqs_hz, dtype=float)
        return (
            self.source.acceleration_spectrum(freqs_hz)
            * self.path.apply(freqs_hz, distance_km)
            * self.site.apply(freqs_hz)
        )

    def motion_duration_s(self, distance_km: float) -> float:
        """Total strong-shaking duration (source + path terms)."""
        return self.source.duration_s() + self.path.path_duration_s(distance_km)

    def simulate(
        self,
        npts: int,
        dt: float,
        distance_km: float,
        rng: np.random.Generator,
        *,
        pre_event_fraction: float = 0.05,
        noise_floor_gal: float = 0.02,
    ) -> np.ndarray:
        """Simulate one acceleration component, in gal.

        The shaped motion occupies a window sized from the duration
        model; the rest of the record (including a pre-event lead-in)
        carries only low-level instrument noise, like real triggered
        accelerograph files.  The instrument noise floor is what gives
        the velocity Fourier spectrum its long-period inflection — the
        feature process P10 must find.
        """
        if npts < 16:
            raise SignalError(f"record length must be >= 16 samples, got {npts}")
        if dt <= 0:
            raise SignalError(f"sample interval must be positive, got {dt}")
        duration = self.motion_duration_s(distance_km)
        n_motion = min(npts, max(16, int(round(duration / dt))))
        lead = int(pre_event_fraction * npts)
        lead = min(lead, npts - n_motion)

        # Shape windowed Gaussian noise to the target spectrum.
        noise = rng.standard_normal(n_motion) * saragoni_hart_window(n_motion)
        spec = np.fft.rfft(noise)
        freqs = np.fft.rfftfreq(n_motion, dt)
        mag = np.abs(spec)
        # Normalize so the noise contributes unit mean-square spectral
        # amplitude (Boore's normalization), then impose the target.
        ms = np.sqrt(np.mean(mag[1:] ** 2))
        if ms <= 0:
            raise SignalError("degenerate noise realization")
        target = self.target_spectrum(np.maximum(freqs, freqs[1] if len(freqs) > 1 else 1.0),
                                      distance_km)
        shaped = spec / ms * target / dt
        shaped[0] = 0.0
        motion = np.fft.irfft(shaped, n_motion)

        record = rng.standard_normal(npts) * noise_floor_gal
        record[lead : lead + n_motion] += motion
        return record
