"""Whole-path attenuation for the stochastic simulator.

Combines bilinear geometric spreading with frequency-dependent anelastic
attenuation ``exp(-pi f R / (Q(f) beta))``, ``Q(f) = Q0 f^eta`` — the
standard terms of the Boore (2003) stochastic method with generic
Central-America-like constants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignalError
from repro.synth.source import BETA_KM_S


@dataclass(frozen=True)
class PathModel:
    """Path attenuation model.

    ``spreading_crossover_km`` is where body-wave 1/R spreading hands
    over to surface-wave-like 1/sqrt(R); ``q0``/``q_eta`` set the
    quality factor ``Q(f) = q0 * f**q_eta``.
    """

    spreading_crossover_km: float = 70.0
    q0: float = 180.0
    q_eta: float = 0.45

    def geometric_spreading(self, distance_km: float) -> float:
        """Dimensionless spreading factor relative to 1 km."""
        if distance_km <= 0:
            raise SignalError(f"distance must be positive, got {distance_km}")
        x = self.spreading_crossover_km
        if distance_km <= x:
            return 1.0 / distance_km
        return 1.0 / x * np.sqrt(x / distance_km)

    def anelastic(self, freqs_hz: np.ndarray, distance_km: float) -> np.ndarray:
        """Frequency-dependent attenuation factor along the path."""
        freqs_hz = np.asarray(freqs_hz, dtype=float)
        q = self.q0 * np.maximum(freqs_hz, 1e-6) ** self.q_eta
        return np.exp(-np.pi * freqs_hz * distance_km / (q * BETA_KM_S))

    def apply(self, freqs_hz: np.ndarray, distance_km: float) -> np.ndarray:
        """Total path factor (spreading x anelastic)."""
        return self.geometric_spreading(distance_km) * self.anelastic(freqs_hz, distance_km)

    def path_duration_s(self, distance_km: float) -> float:
        """Distance-dependent duration increment (Boore's 0.05 R rule)."""
        if distance_km <= 0:
            raise SignalError(f"distance must be positive, got {distance_km}")
        return 0.05 * distance_km
