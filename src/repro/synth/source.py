"""Brune omega-squared point-source spectrum.

Standard stochastic-method source model: the Fourier acceleration
source spectrum is ``C M0 (2 pi f)^2 / (1 + (f / fc)^2)`` with the
corner frequency tied to seismic moment and stress drop.  Constants
follow Boore (2003) with generic hard-rock crustal values; the absolute
level only needs to be *plausible* (tens to hundreds of gal near the
source) since the pipeline is amplitude-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignalError

#: Shear-wave velocity at the source, km/s.
BETA_KM_S: float = 3.5

#: Crustal density at the source, g/cm^3.
RHO_G_CM3: float = 2.8

#: Average radiation pattern x free surface x energy partition factor.
RADIATION_FACTOR: float = 0.55 * 2.0 * (1.0 / np.sqrt(2.0))


def moment_from_magnitude(magnitude: float) -> float:
    """Seismic moment in dyne-cm from moment magnitude (Hanks & Kanamori)."""
    return 10.0 ** (1.5 * magnitude + 16.05)


def corner_frequency(moment_dyne_cm: float, stress_drop_bars: float = 100.0) -> float:
    """Brune corner frequency in Hz.

    ``fc = 4.9e6 * beta * (stress_drop / M0)^(1/3)`` with beta in km/s,
    stress drop in bars and M0 in dyne-cm.
    """
    if moment_dyne_cm <= 0 or stress_drop_bars <= 0:
        raise SignalError("moment and stress drop must be positive")
    return 4.9e6 * BETA_KM_S * (stress_drop_bars / moment_dyne_cm) ** (1.0 / 3.0)


@dataclass(frozen=True)
class BruneSource:
    """An omega-squared point source parameterized by magnitude."""

    magnitude: float
    stress_drop_bars: float = 100.0

    @property
    def moment(self) -> float:
        """Seismic moment in dyne-cm."""
        return moment_from_magnitude(self.magnitude)

    @property
    def corner_frequency(self) -> float:
        """Brune corner frequency in Hz."""
        return corner_frequency(self.moment, self.stress_drop_bars)

    def acceleration_spectrum(self, freqs_hz: np.ndarray) -> np.ndarray:
        """Source acceleration spectrum (cm/s, i.e. gal*s) at 1 km.

        The constant ``C = R / (4 pi rho beta^3)`` converts moment to
        far-field displacement amplitude; two omega factors turn it
        into acceleration.
        """
        freqs_hz = np.asarray(freqs_hz, dtype=float)
        c = RADIATION_FACTOR / (4.0 * np.pi * RHO_G_CM3 * (BETA_KM_S * 1e5) ** 3) * 1e-5
        fc = self.corner_frequency
        omega = 2.0 * np.pi * freqs_hz
        return c * self.moment * omega**2 / (1.0 + (freqs_hz / fc) ** 2)

    def duration_s(self) -> float:
        """Source duration ~ 1 / fc (Boore's source duration term)."""
        return 1.0 / self.corner_frequency
