"""Site response for the stochastic simulator.

A generic crustal amplification curve (interpolated in log frequency)
and the kappa high-frequency diminution filter ``exp(-pi kappa f)``.
Varying kappa across stations is how the synthetic network reproduces
the paper's "variety of equipment types and sampling rates" — different
stations see visibly different spectra, which exercises the per-record
FPL/FSL search.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SignalError

#: Generic rock-site amplification (Boore & Joyner 1997 style), as
#: (frequency Hz, amplification) control points.
_GENERIC_AMP_FREQS = np.array([0.01, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 50.0])
_GENERIC_AMP_VALUES = np.array([1.00, 1.10, 1.18, 1.42, 1.58, 1.74, 2.06, 2.25, 2.25])


@dataclass(frozen=True)
class SiteModel:
    """Site amplification and kappa for one station."""

    kappa_s: float = 0.04
    amplification_freqs: np.ndarray = field(default_factory=lambda: _GENERIC_AMP_FREQS.copy())
    amplification_values: np.ndarray = field(default_factory=lambda: _GENERIC_AMP_VALUES.copy())

    def __post_init__(self) -> None:
        if self.kappa_s < 0:
            raise SignalError(f"kappa must be >= 0, got {self.kappa_s}")

    def amplification(self, freqs_hz: np.ndarray) -> np.ndarray:
        """Crustal amplification, log-frequency interpolated."""
        freqs_hz = np.asarray(freqs_hz, dtype=float)
        safe = np.maximum(freqs_hz, self.amplification_freqs[0])
        return np.interp(
            np.log(safe),
            np.log(self.amplification_freqs),
            self.amplification_values,
        )

    def kappa_filter(self, freqs_hz: np.ndarray) -> np.ndarray:
        """High-frequency diminution ``exp(-pi kappa f)``."""
        freqs_hz = np.asarray(freqs_hz, dtype=float)
        return np.exp(-np.pi * self.kappa_s * freqs_hz)

    def apply(self, freqs_hz: np.ndarray) -> np.ndarray:
        """Total site factor (amplification x kappa)."""
        return self.amplification(freqs_hz) * self.kappa_filter(freqs_hz)
