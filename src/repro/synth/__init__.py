"""Synthetic strong-motion data generation.

The paper's 71 V1 accelerograms from the Salvadoran network are not
public, so this package provides the substitute documented in
DESIGN.md: a stochastic ground-motion simulator in the Boore (2003)
tradition — Brune omega-squared source spectrum, whole-path
attenuation, site amplification with kappa, and a Saragoni–Hart shaped
noise carrier — plus a six-event catalog whose file counts and total
data points match Table I of the paper exactly.
"""

from repro.synth.source import BruneSource, moment_from_magnitude, corner_frequency
from repro.synth.path import PathModel
from repro.synth.site import SiteModel
from repro.synth.stochastic import StochasticSimulator, saragoni_hart_window
from repro.synth.network import StationSpec, make_network
from repro.synth.events import EventSpec, PAPER_EVENTS, paper_event, distribute_points
from repro.synth.dataset import generate_event_dataset, DatasetManifest

__all__ = [
    "BruneSource",
    "moment_from_magnitude",
    "corner_frequency",
    "PathModel",
    "SiteModel",
    "StochasticSimulator",
    "saragoni_hart_window",
    "StationSpec",
    "make_network",
    "EventSpec",
    "PAPER_EVENTS",
    "paper_event",
    "distribute_points",
    "generate_event_dataset",
    "DatasetManifest",
]
