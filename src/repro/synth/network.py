"""The synthetic strong-motion station network.

Stations get deterministic codes, epicentral distances, site kappas and
sampling rates.  Two instrument generations coexist (100 Hz and 200 Hz
digitizers), mirroring the mixed equipment of the Salvadoran network.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignalError

#: Sampling intervals of the two instrument generations (s).
INSTRUMENT_DT: tuple[float, float] = (0.01, 0.005)


@dataclass(frozen=True)
class StationSpec:
    """One accelerograph station of the synthetic network."""

    code: str
    distance_km: float
    kappa_s: float
    dt: float

    def __post_init__(self) -> None:
        if self.distance_km <= 0:
            raise SignalError(f"station {self.code}: distance must be positive")
        if self.dt <= 0:
            raise SignalError(f"station {self.code}: dt must be positive")


def make_network(n_stations: int, seed: int) -> list[StationSpec]:
    """Create a deterministic network of ``n_stations`` stations.

    Codes are ``ST01..``; distances span 8–90 km (log-uniform, sorted
    ascending so nearby stations list first, like a real trigger list);
    kappa varies 0.02–0.06 s; the instrument generation alternates
    pseudo-randomly.
    """
    if n_stations < 1:
        raise SignalError(f"network needs >= 1 station, got {n_stations}")
    rng = np.random.default_rng(seed)
    distances = np.sort(np.exp(rng.uniform(np.log(8.0), np.log(90.0), n_stations)))
    kappas = rng.uniform(0.02, 0.06, n_stations)
    gens = rng.integers(0, len(INSTRUMENT_DT), n_stations)
    return [
        StationSpec(
            code=f"ST{i + 1:02d}",
            distance_km=float(distances[i]),
            kappa_s=float(kappas[i]),
            dt=INSTRUMENT_DT[int(gens[i])],
        )
        for i in range(n_stations)
    ]
