"""Writing synthetic V1 datasets to disk.

:func:`generate_event_dataset` turns an :class:`~repro.synth.events.EventSpec`
into the on-disk input the pipeline expects: one ``<station>.v1`` file
per triggered station, three components each, fully deterministic from
the event seed.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.formats.common import COMPONENTS, Header
from repro.formats.v1 import RawRecord, write_v1
from repro.synth.events import EventSpec
from repro.synth.network import StationSpec, make_network
from repro.synth.site import SiteModel
from repro.synth.source import BruneSource
from repro.synth.stochastic import StochasticSimulator


@dataclass(frozen=True)
class DatasetManifest:
    """What was generated: event, stations and written file paths."""

    event: EventSpec
    stations: tuple[StationSpec, ...]
    paths: tuple[str, ...]
    total_points: int

    @property
    def n_files(self) -> int:
        """Number of V1 files written."""
        return len(self.paths)


def _component_rng(event: EventSpec, station: StationSpec, comp: str) -> np.random.Generator:
    """Deterministic per-(event, station, component) RNG stream.

    Uses crc32 rather than ``hash()`` so streams are stable across
    interpreter runs and worker processes (``hash`` of a str is salted
    per process, which would make parallel backends non-reproducible).
    """
    salt = zlib.crc32(f"{event.seed}/{station.code}/{comp}".encode()) & 0x7FFFFFFF
    return np.random.default_rng(np.random.SeedSequence([event.seed, salt]))


def synthesize_station_record(
    event: EventSpec, station: StationSpec, npts: int
) -> RawRecord:
    """Simulate one station's three-component raw record."""
    source = BruneSource(magnitude=event.magnitude)
    simulator = StochasticSimulator(source=source, site=SiteModel(kappa_s=station.kappa_s))
    components: dict[str, np.ndarray] = {}
    for comp in COMPONENTS:
        rng = _component_rng(event, station, comp)
        acc = simulator.simulate(npts, station.dt, station.distance_km, rng)
        # Vertical motion runs systematically weaker than horizontal.
        if comp == "v":
            acc = 0.6 * acc
        components[comp] = acc
    header = Header(
        station=station.code,
        event_id=event.event_id,
        origin_time=event.date,
        magnitude=event.magnitude,
        dt=station.dt,
        npts=npts,
        units="GAL",
        extra={"DIST-KM": f"{station.distance_km:.2f}", "KAPPA": f"{station.kappa_s:.4f}"},
    )
    return RawRecord(header=header, components=components)


def generate_event_dataset(
    event: EventSpec,
    directory: Path | str,
    *,
    points_override: list[int] | None = None,
) -> DatasetManifest:
    """Write all V1 files for one event into ``directory``.

    ``points_override`` substitutes the per-file point counts (used by
    scaled-down test/bench workloads); by default the event's own
    deterministic distribution is used.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    points = event.file_points() if points_override is None else list(points_override)
    stations = make_network(len(points), seed=event.seed)
    paths: list[str] = []
    total = 0
    for station, npts in zip(stations, points):
        record = synthesize_station_record(event, station, npts)
        path = directory / f"{station.code}.v1"
        write_v1(path, record)
        paths.append(str(path))
        total += npts
    return DatasetManifest(
        event=event, stations=tuple(stations), paths=tuple(paths), total_points=total
    )
