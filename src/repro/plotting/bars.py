"""Grouped bar charts on the PostScript canvas.

Figures 11 and 12 of the paper are grouped bar charts (per-stage and
per-event execution times).  This renders the same layout: categories
along the x-axis, one shaded bar per series within each category, a
y-axis with round ticks and a legend.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.plotting.charts import Axis
from repro.plotting.ps import PostScriptCanvas


@dataclass
class BarSeries:
    """One bar per category, with a shared gray level."""

    label: str
    values: list[float]
    gray: float = 0.0


@dataclass
class BarChart:
    """A grouped bar chart."""

    title: str = ""
    categories: list[str] = field(default_factory=list)
    series: list[BarSeries] = field(default_factory=list)
    y_label: str = ""
    y_log: bool = False

    def add(self, series: BarSeries) -> None:
        """Append a series; its length must match the categories."""
        if len(series.values) != len(self.categories):
            raise ReproError(
                f"series {series.label!r} has {len(series.values)} values for "
                f"{len(self.categories)} categories"
            )
        self.series.append(series)

    def draw(
        self,
        canvas: PostScriptCanvas,
        *,
        x0: float,
        y0: float,
        width: float,
        height: float,
    ) -> None:
        """Render into the given page rectangle."""
        if not self.series or not self.categories:
            raise ReproError(f"bar chart {self.title!r} has no data")
        values = np.array([s.values for s in self.series], dtype=float)
        axis = Axis(label=self.y_label, log=self.y_log, lo=None if self.y_log else 0.0)
        ylo, yhi = axis.resolved(values.ravel())

        canvas.set_gray(0.0)
        canvas.set_line_width(0.8)
        canvas.set_dash(())
        canvas.rect(x0, y0, width, height)
        if self.title:
            canvas.text(x0 + width / 2, y0 + height + 6, self.title, size=11, align="center")
        if self.y_label:
            canvas.text(x0 - 8, y0 + height + 6, self.y_label, size=9)

        canvas.set_line_width(0.4)
        for tick in axis.ticks(ylo, yhi):
            if not (ylo <= tick <= yhi):
                continue
            py = y0 + self._frac(tick, ylo, yhi) * height
            canvas.line(x0, py, x0 + 4, py)
            canvas.text(x0 - 4, py - 2, f"{tick:g}", size=7, align="right")

        n_cat = len(self.categories)
        n_ser = len(self.series)
        slot = width / n_cat
        bar_w = 0.8 * slot / n_ser
        for ci, category in enumerate(self.categories):
            cx = x0 + (ci + 0.5) * slot
            canvas.set_gray(0.0)
            canvas.text(cx, y0 - 12, category, size=7, align="center")
            for si, series in enumerate(self.series):
                value = values[si, ci]
                h = self._frac(value, ylo, yhi) * height
                h = min(max(h, 0.0), height)
                bx = cx - 0.4 * slot + si * bar_w
                canvas.set_gray(series.gray)
                if h > 0:
                    canvas.rect(bx, y0, bar_w, h, fill=True)
                canvas.set_gray(0.0)
                canvas.rect(bx, y0, bar_w, max(h, 0.1))

        legend_y = y0 + height - 10
        for series in self.series:
            canvas.set_gray(series.gray)
            canvas.rect(x0 + width - 70, legend_y, 10, 6, fill=True)
            canvas.set_gray(0.0)
            canvas.rect(x0 + width - 70, legend_y, 10, 6)
            canvas.text(x0 + width - 56, legend_y, series.label, size=7)
            legend_y -= 11

    def _frac(self, value: float, lo: float, hi: float) -> float:
        if self.y_log:
            if value <= 0:
                return 0.0
            return float((np.log10(value) - np.log10(lo)) / (np.log10(hi) - np.log10(lo)))
        return float((value - lo) / (hi - lo))
