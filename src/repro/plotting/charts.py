"""Line charts on the PostScript canvas.

A small but real charting layer: linear and logarithmic axes with tick
generation, data-to-page coordinate mapping, polyline decimation for
long records, and stacked multi-panel layout — everything the
accelerograph/Fourier/response plots need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.plotting.ps import PostScriptCanvas


@dataclass
class Axis:
    """One chart axis: data range, scale and label."""

    label: str = ""
    log: bool = False
    lo: float | None = None
    hi: float | None = None

    def resolved(self, data: np.ndarray) -> tuple[float, float]:
        """Final (lo, hi) after applying data-driven defaults."""
        finite = data[np.isfinite(data)]
        if self.log:
            finite = finite[finite > 0]
        if finite.size == 0 and (self.lo is None or self.hi is None):
            raise ReproError(f"axis {self.label!r}: no finite data to autoscale from")
        lo = self.lo if self.lo is not None else float(finite.min())
        hi = self.hi if self.hi is not None else float(finite.max())
        if self.log:
            if lo <= 0:
                lo = float(finite[finite > 0].min()) if np.any(finite > 0) else 1e-6
            if hi <= lo:
                hi = lo * 10.0
        elif hi <= lo:
            span = abs(lo) if lo else 1.0
            lo, hi = lo - 0.5 * span, lo + 0.5 * span
        return lo, hi

    def ticks(self, lo: float, hi: float, target: int = 6) -> list[float]:
        """Tick positions: decades for log axes, round steps otherwise."""
        if self.log:
            first = int(np.ceil(np.log10(lo) - 1e-9))
            last = int(np.floor(np.log10(hi) + 1e-9))
            return [10.0**e for e in range(first, last + 1)] or [lo, hi]
        raw = (hi - lo) / max(target, 2)
        mag = 10.0 ** np.floor(np.log10(raw)) if raw > 0 else 1.0
        for mult in (1.0, 2.0, 5.0, 10.0):
            step = mult * mag
            if (hi - lo) / step <= target:
                break
        first = np.ceil(lo / step) * step
        return list(np.arange(first, hi + 0.5 * step, step))


@dataclass
class Series:
    """One plotted line: x/y data, legend label and gray level."""

    x: np.ndarray
    y: np.ndarray
    label: str = ""
    gray: float = 0.0
    dash: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float)
        self.y = np.asarray(self.y, dtype=float)
        if self.x.shape != self.y.shape:
            raise ReproError(f"series {self.label!r}: x and y must have equal shape")


def _decimate_for_plot(x: np.ndarray, y: np.ndarray, max_points: int = 2000) -> tuple[np.ndarray, np.ndarray]:
    """Min/max-preserving decimation so long records stay faithful.

    Each output bucket contributes its extreme values, preserving the
    envelope that matters in an accelerogram plot.
    """
    n = x.shape[0]
    if n <= max_points:
        return x, y
    buckets = max_points // 2
    edges = np.linspace(0, n, buckets + 1, dtype=int)
    xs: list[float] = []
    ys: list[float] = []
    for b in range(buckets):
        s, e = edges[b], edges[b + 1]
        if s >= e:
            continue
        seg = y[s:e]
        i_min = s + int(np.argmin(seg))
        i_max = s + int(np.argmax(seg))
        for i in sorted((i_min, i_max)):
            xs.append(float(x[i]))
            ys.append(float(y[i]))
    return np.asarray(xs), np.asarray(ys)


@dataclass
class LineChart:
    """A single-panel line chart with optional log axes."""

    title: str = ""
    x_axis: Axis = field(default_factory=Axis)
    y_axis: Axis = field(default_factory=Axis)
    series: list[Series] = field(default_factory=list)

    def add(self, series: Series) -> None:
        """Append a series to the chart."""
        self.series.append(series)

    def _transform(self, values: np.ndarray, lo: float, hi: float, log: bool,
                   p0: float, p1: float) -> np.ndarray:
        if log:
            with np.errstate(divide="ignore", invalid="ignore"):
                frac = (np.log10(values) - np.log10(lo)) / (np.log10(hi) - np.log10(lo))
        else:
            frac = (values - lo) / (hi - lo)
        return p0 + frac * (p1 - p0)

    def draw(
        self,
        canvas: PostScriptCanvas,
        *,
        x0: float,
        y0: float,
        width: float,
        height: float,
    ) -> None:
        """Render the chart into the given page rectangle."""
        if not self.series:
            raise ReproError(f"chart {self.title!r} has no series")
        all_x = np.concatenate([s.x for s in self.series])
        all_y = np.concatenate([s.y for s in self.series])
        xlo, xhi = self.x_axis.resolved(all_x)
        ylo, yhi = self.y_axis.resolved(all_y)

        canvas.set_gray(0.0)
        canvas.set_line_width(0.8)
        canvas.set_dash(())
        canvas.rect(x0, y0, width, height)
        if self.title:
            canvas.text(x0 + width / 2, y0 + height + 6, self.title, size=11, align="center")
        if self.x_axis.label:
            canvas.text(x0 + width / 2, y0 - 28, self.x_axis.label, size=9, align="center")
        if self.y_axis.label:
            canvas.text(x0 - 8, y0 + height + 6, self.y_axis.label, size=9, align="left")

        # Ticks and grid.
        canvas.set_line_width(0.4)
        for tick in self.x_axis.ticks(xlo, xhi):
            if not (xlo <= tick <= xhi):
                continue
            px = float(self._transform(np.array([tick]), xlo, xhi, self.x_axis.log, x0, x0 + width)[0])
            canvas.line(px, y0, px, y0 + 4)
            canvas.text(px, y0 - 12, _tick_label(tick, self.x_axis.log), size=7, align="center")
        for tick in self.y_axis.ticks(ylo, yhi):
            if not (ylo <= tick <= yhi):
                continue
            py = float(self._transform(np.array([tick]), ylo, yhi, self.y_axis.log, y0, y0 + height)[0])
            canvas.line(x0, py, x0 + 4, py)
            canvas.text(x0 - 4, py - 2, _tick_label(tick, self.y_axis.log), size=7, align="right")

        # Series.
        legend_y = y0 + height - 10
        for s in self.series:
            x, y = _decimate_for_plot(s.x, s.y)
            mask = np.isfinite(x) & np.isfinite(y)
            if self.x_axis.log:
                mask &= x > 0
            if self.y_axis.log:
                mask &= y > 0
            x, y = x[mask], y[mask]
            if x.size < 2:
                continue
            px = self._transform(x, xlo, xhi, self.x_axis.log, x0, x0 + width)
            py = self._transform(y, ylo, yhi, self.y_axis.log, y0, y0 + height)
            px = np.clip(px, x0, x0 + width)
            py = np.clip(py, y0, y0 + height)
            canvas.set_gray(s.gray)
            canvas.set_dash(s.dash)
            canvas.set_line_width(0.6)
            canvas.polyline(list(zip(px.tolist(), py.tolist())))
            if s.label:
                canvas.set_dash(())
                canvas.line(x0 + width - 58, legend_y + 3, x0 + width - 44, legend_y + 3)
                canvas.text(x0 + width - 40, legend_y, s.label, size=7)
                legend_y -= 10
        canvas.set_gray(0.0)
        canvas.set_dash(())


def _tick_label(value: float, log: bool) -> str:
    if log:
        exponent = int(round(np.log10(value)))
        if -3 <= exponent <= 3:
            return f"{value:g}"
        return f"1e{exponent}"
    return f"{value:g}"
