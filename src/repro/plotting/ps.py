"""A minimal PostScript writer.

Implements just enough of the language for the pipeline's plots:
stroked polylines, filled rectangles, text with Helvetica, gray and RGB
color, and dashed lines.  Coordinates are points (1/72 inch) with the
origin at the lower-left of a US-letter page, exactly as PostScript
defines them.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import ReproError

PAGE_WIDTH: float = 612.0
PAGE_HEIGHT: float = 792.0


class PostScriptCanvas:
    """An in-memory PostScript page assembled command by command."""

    def __init__(self, title: str = "repro plot") -> None:
        self.title = title
        self._body: list[str] = []
        self._finished = False

    def _emit(self, command: str) -> None:
        if self._finished:
            raise ReproError("cannot draw on a finished PostScript canvas")
        self._body.append(command)

    def set_gray(self, level: float) -> None:
        """Set the stroke/fill gray level (0 = black, 1 = white)."""
        self._emit(f"{level:.3f} setgray")

    def set_rgb(self, r: float, g: float, b: float) -> None:
        """Set the stroke/fill color."""
        self._emit(f"{r:.3f} {g:.3f} {b:.3f} setrgbcolor")

    def set_line_width(self, width: float) -> None:
        """Set the stroke width in points."""
        self._emit(f"{width:.3f} setlinewidth")

    def set_dash(self, pattern: tuple[float, ...] = ()) -> None:
        """Set the dash pattern; empty pattern means solid."""
        inner = " ".join(f"{v:.2f}" for v in pattern)
        self._emit(f"[{inner}] 0 setdash")

    def polyline(self, points: list[tuple[float, float]]) -> None:
        """Stroke a connected path through the given page coordinates."""
        if len(points) < 2:
            return
        parts = ["newpath", f"{points[0][0]:.2f} {points[0][1]:.2f} moveto"]
        parts.extend(f"{x:.2f} {y:.2f} lineto" for x, y in points[1:])
        parts.append("stroke")
        self._emit("\n".join(parts))

    def line(self, x0: float, y0: float, x1: float, y1: float) -> None:
        """Stroke a single segment."""
        self.polyline([(x0, y0), (x1, y1)])

    def rect(self, x: float, y: float, w: float, h: float, *, fill: bool = False) -> None:
        """Stroke (or fill) an axis-aligned rectangle."""
        op = "fill" if fill else "stroke"
        self._emit(
            f"newpath {x:.2f} {y:.2f} moveto {w:.2f} 0 rlineto "
            f"0 {h:.2f} rlineto {-w:.2f} 0 rlineto closepath {op}"
        )

    def text(
        self, x: float, y: float, string: str, *, size: float = 10.0, align: str = "left"
    ) -> None:
        """Draw text; ``align`` is left, center or right."""
        escaped = string.replace("\\", r"\\").replace("(", r"\(").replace(")", r"\)")
        self._emit(f"/Helvetica findfont {size:.1f} scalefont setfont")
        if align == "left":
            self._emit(f"{x:.2f} {y:.2f} moveto ({escaped}) show")
        elif align == "center":
            self._emit(
                f"{x:.2f} {y:.2f} moveto ({escaped}) dup stringwidth pop 2 div neg 0 rmoveto show"
            )
        elif align == "right":
            self._emit(
                f"{x:.2f} {y:.2f} moveto ({escaped}) dup stringwidth pop neg 0 rmoveto show"
            )
        else:
            raise ReproError(f"unknown text alignment {align!r}")

    def render(self) -> str:
        """Assemble the complete single-page PostScript document."""
        header = [
            "%!PS-Adobe-3.0",
            f"%%Title: {self.title}",
            "%%Creator: repro.plotting",
            f"%%BoundingBox: 0 0 {int(PAGE_WIDTH)} {int(PAGE_HEIGHT)}",
            "%%Pages: 1",
            "%%EndComments",
            "%%Page: 1 1",
        ]
        footer = ["showpage", "%%EOF"]
        return "\n".join(header + self._body + footer) + "\n"

    def save(self, path: Path | str) -> None:
        """Write the document to disk and finish the canvas."""
        target = path if isinstance(path, Path) else Path(path)
        target.write_text(self.render())
        self._finished = True
