"""The three seismological plot layouts of the pipeline.

- :func:`plot_accelerograph` (P6/P15): three stacked time-series panels
  (acceleration, velocity, displacement) like the paper's Fig. 2.
- :func:`plot_fourier_spectrum` (P9): log-log Fourier amplitude
  spectra of A/V/D against period, like Fig. 3.
- :func:`plot_response_spectrum` (P18): log-log response spectra
  (SA/SV/SD at 5% damping) against period, like Fig. 4.

Each renders one component per panel group for all three components of
a station into a single-page PostScript file.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.formats.fourier import FourierRecord
from repro.formats.response import ResponseRecord
from repro.formats.v2 import CorrectedRecord
from repro.plotting.charts import Axis, LineChart, Series
from repro.plotting.ps import PAGE_HEIGHT, PAGE_WIDTH, PostScriptCanvas

_MARGIN = 54.0
_GAP = 40.0


def _panel_boxes(n: int) -> list[tuple[float, float, float, float]]:
    """Page rectangles (x0, y0, w, h) for n stacked panels."""
    width = PAGE_WIDTH - 2 * _MARGIN
    total_h = PAGE_HEIGHT - 2 * _MARGIN - (n - 1) * _GAP
    panel_h = total_h / n
    boxes = []
    for i in range(n):
        y0 = PAGE_HEIGHT - _MARGIN - (i + 1) * panel_h - i * _GAP
        boxes.append((_MARGIN, y0, width, panel_h))
    return boxes


def plot_accelerograph(path: Path | str, records: dict[str, CorrectedRecord]) -> None:
    """Render a station's corrected motion (A/V/D per component)."""
    station = next(iter(records.values())).header.station
    canvas = PostScriptCanvas(title=f"{station} corrected motion")
    comps = sorted(records)
    quantities = (
        ("acceleration", "cm/s^2"),
        ("velocity", "cm/s"),
        ("displacement", "cm"),
    )
    boxes = _panel_boxes(3)
    grays = {comp: g for comp, g in zip(comps, (0.0, 0.45, 0.7))}
    for (quantity, unit), box in zip(quantities, boxes):
        chart = LineChart(
            title=f"{station} {quantity}",
            x_axis=Axis(label="Time (s)"),
            y_axis=Axis(label=unit),
        )
        for comp in comps:
            rec = records[comp]
            t = np.arange(rec.header.npts) * rec.header.dt
            chart.add(Series(x=t, y=getattr(rec, quantity), label=comp, gray=grays[comp]))
        chart.draw(canvas, x0=box[0], y0=box[1], width=box[2], height=box[3])
    canvas.save(path)


def plot_fourier_spectrum(path: Path | str, records: dict[str, FourierRecord]) -> None:
    """Render a station's Fourier amplitude spectra (per component)."""
    station = next(iter(records.values())).header.station
    canvas = PostScriptCanvas(title=f"{station} Fourier spectra")
    comps = sorted(records)
    boxes = _panel_boxes(len(comps))
    for comp, box in zip(comps, boxes):
        rec = records[comp]
        chart = LineChart(
            title=f"{station} component {comp}",
            x_axis=Axis(label="Period (s)", log=True),
            y_axis=Axis(label="Fourier amplitude", log=True),
        )
        chart.add(Series(x=rec.periods, y=rec.acceleration, label="acc", gray=0.0))
        chart.add(Series(x=rec.periods, y=rec.velocity, label="vel", gray=0.45))
        chart.add(Series(x=rec.periods, y=rec.displacement, label="disp", gray=0.7))
        chart.draw(canvas, x0=box[0], y0=box[1], width=box[2], height=box[3])
    canvas.save(path)


def plot_response_spectrum(
    path: Path | str, records: dict[str, ResponseRecord], *, damping: float = 0.05
) -> None:
    """Render a station's response spectra at the given damping ratio."""
    station = next(iter(records.values())).header.station
    canvas = PostScriptCanvas(title=f"{station} response spectra")
    comps = sorted(records)
    boxes = _panel_boxes(len(comps))
    for comp, box in zip(comps, boxes):
        rec = records[comp]
        d_idx = int(np.argmin(np.abs(rec.dampings - damping)))
        chart = LineChart(
            title=f"{station} component {comp} ({100 * rec.dampings[d_idx]:.0f}% damping)",
            x_axis=Axis(label="Period (s)", log=True),
            y_axis=Axis(label="Spectral response", log=True),
        )
        chart.add(Series(x=rec.periods, y=rec.sa[d_idx], label="SA", gray=0.0))
        chart.add(Series(x=rec.periods, y=rec.sv[d_idx], label="SV", gray=0.45))
        chart.add(Series(x=rec.periods, y=rec.sd[d_idx], label="SD", gray=0.7))
        chart.draw(canvas, x0=box[0], y0=box[1], width=box[2], height=box[3])
    canvas.save(path)
