"""Gantt rendering of simulated schedules and measured traces.

One row per logical processor, one shaded rectangle per task placement,
stage-keyed gray levels and a time axis — the picture that explains
*why* stage IX speeds up 5x while stage X saturates at 1.5x.  The same
renderer draws both sources: a :class:`SimulationResult` from the
machine simulator, or (via :func:`plot_trace_gantt`) a real run's span
trace.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import ReproError
from repro.parallel.simulate import SimulationResult
from repro.plotting.ps import PAGE_HEIGHT, PAGE_WIDTH, PostScriptCanvas

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.observability.tracer import Trace

_MARGIN = 54.0


def _stage_grays(stages: list[str]) -> dict[str, float]:
    """Deterministic gray assignment over the distinct stages."""
    unique = sorted(set(stages))
    if not unique:
        return {}
    if len(unique) == 1:
        return {unique[0]: 0.4}
    return {
        stage: 0.15 + 0.7 * i / (len(unique) - 1) for i, stage in enumerate(unique)
    }


def plot_schedule_gantt(
    path: Path | str, result: SimulationResult, *, title: str = "simulated schedule"
) -> None:
    """Render a simulated schedule as a Gantt chart, one PS page."""
    if not result.placements:
        raise ReproError("cannot render an empty schedule")
    canvas = PostScriptCanvas(title=title)
    makespan = result.makespan_s
    workers = sorted({p.worker for p in result.placements})
    grays = _stage_grays([p.stage for p in result.placements])

    x0 = _MARGIN + 18
    width = PAGE_WIDTH - x0 - _MARGIN
    y_top = PAGE_HEIGHT - _MARGIN - 20
    row_h = min(24.0, (y_top - _MARGIN - 40) / max(len(workers), 1))

    canvas.text(PAGE_WIDTH / 2, PAGE_HEIGHT - _MARGIN, title, size=12, align="center")
    canvas.set_line_width(0.5)
    for i, worker in enumerate(workers):
        ry = y_top - (i + 1) * row_h
        canvas.set_gray(0.0)
        canvas.text(x0 - 6, ry + row_h / 2 - 3, f"LP{worker}", size=7, align="right")
        canvas.rect(x0, ry, width, row_h)
    for p in result.placements:
        i = workers.index(p.worker)
        ry = y_top - (i + 1) * row_h
        bx = x0 + (p.start_s / makespan) * width
        bw = max(((p.finish_s - p.start_s) / makespan) * width, 0.3)
        canvas.set_gray(grays.get(p.stage, 0.5))
        canvas.rect(bx, ry + 1, bw, row_h - 2, fill=True)
        canvas.set_gray(0.0)
        canvas.rect(bx, ry + 1, bw, row_h - 2)

    # Time axis and legend.
    axis_y = y_top - len(workers) * row_h - 16
    canvas.set_gray(0.0)
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        tx = x0 + frac * width
        canvas.line(tx, axis_y + 10, tx, axis_y + 14)
        canvas.text(tx, axis_y, f"{frac * makespan:.1f}s", size=7, align="center")
    legend_y = axis_y - 18
    legend_x = x0
    for stage, gray in sorted(grays.items()):
        canvas.set_gray(gray)
        canvas.rect(legend_x, legend_y, 10, 6, fill=True)
        canvas.set_gray(0.0)
        canvas.rect(legend_x, legend_y, 10, 6)
        canvas.text(legend_x + 13, legend_y, stage or "(none)", size=7)
        legend_x += 14 + 7 * max(len(stage), 4)
        if legend_x > x0 + width - 60:
            legend_x = x0
            legend_y -= 11
    canvas.save(path)


def plot_trace_gantt(
    path: Path | str,
    trace: "Trace",
    *,
    title: str = "measured trace",
    kinds: tuple[str, ...] | None = None,
) -> None:
    """Render a measured span trace as a Gantt chart.

    Rows are the workers that actually executed spans (threads, pool
    processes, cluster ranks); bars are the trace's work spans, picked
    by ``kinds`` or auto-selected at the most granular level present
    (chunk/task/rank, then process, then stage).
    """
    from repro.observability.export import to_simulation_result

    result = to_simulation_result(trace, kinds=kinds)
    if not result.placements:
        raise ReproError("trace has no work spans to render")
    plot_schedule_gantt(path, result, title=title)
