"""Plotting substrate.

The legacy pipeline's plotting processes write PostScript files
(``<station>.ps``, ``<station>f.ps``, ``<station>r.ps``).  This package
reimplements that from scratch: a minimal PostScript canvas, a line
chart with linear/log axes, and the three seismological plot layouts.
No matplotlib — plots are genuine vector documents written by us, so
the plotting stages carry real I/O and formatting cost like the
originals did.
"""

from repro.plotting.ps import PostScriptCanvas
from repro.plotting.charts import Axis, LineChart, Series
from repro.plotting.seismo import (
    plot_accelerograph,
    plot_fourier_spectrum,
    plot_response_spectrum,
)

__all__ = [
    "PostScriptCanvas",
    "Axis",
    "LineChart",
    "Series",
    "plot_accelerograph",
    "plot_fourier_spectrum",
    "plot_response_spectrum",
]
