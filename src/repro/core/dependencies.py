"""Input/output dependency analysis of the process graph.

Builds, from the registry's versioned read/write declarations, the
directed dependency graph over any subset of processes and offers the
validations and discovery tools the paper's reordering relied on:

- :func:`build_process_graph` — RAW, WAR and WAW edges as a networkx
  ``DiGraph`` (edge attribute ``kind``);
- :func:`validate_sequential_order` — check a linear order (the
  original 0..19 numbering, the optimized 17-process order);
- :func:`validate_stage_plan` — check an 11-stage plan: cross-stage
  edges must point forward and a stage may not contain internal edges
  (its members must be mutually independent, or they could not be run
  as parallel tasks);
- :func:`parallelizable_sets` — the antichain layering (graph
  "generations"): the maximal sets of processes that could run
  concurrently, which is how the stage plan of Fig. 9 is discovered.
"""

from __future__ import annotations

from collections import defaultdict

import networkx as nx

from repro.core.registry import LATEST, PROCESSES, ProcessSpec
from repro.errors import DependencyError, StageOrderError


def _resolve_reads(
    spec: ProcessSpec, versions_present: dict[str, list[int]]
) -> list[tuple[str, int]]:
    """Resolve a process's reads against the versions the subset writes.

    LATEST resolves to the newest written version; reads of inputs no
    process writes (the raw V1 files) resolve to version 0, i.e. the
    pre-existing external input.  A declared version *newer* than any
    the subset writes means the writer was optimized away, so the read
    falls back to the newest available; a declared version *older* than
    one the subset writes has no such reading — the dependency cannot
    be satisfied and :class:`DependencyError` is raised.
    """
    resolved = []
    for ref in spec.reads:
        versions = versions_present.get(ref.identity, [])
        if ref.version == LATEST:
            resolved.append((ref.identity, max(versions) if versions else 0))
        elif ref.version in versions:
            resolved.append((ref.identity, ref.version))
        elif not versions:
            # Nothing in the subset writes this identity: an external
            # input, kept at the declared version.
            resolved.append((ref.identity, ref.version))
        elif ref.version > max(versions):
            # Declared version absent from this subset (its writer was
            # optimized away); fall back to the newest available.
            resolved.append((ref.identity, max(versions)))
        else:
            raise DependencyError(
                f"{spec.label} reads {ref.identity}#{ref.version} but this "
                f"subset only writes versions {sorted(versions)}"
            )
    return resolved


def build_process_graph(pids: list[int] | tuple[int, ...]) -> nx.DiGraph:
    """Dependency DAG over the given process subset.

    Nodes are pids; edges carry ``kind`` in {"raw", "war", "waw"} and
    ``artifact`` naming the file class that induces them.
    """
    specs = []
    for pid in pids:
        if pid not in PROCESSES:
            raise DependencyError(f"unknown process id {pid}")
        specs.append(PROCESSES[pid])
    if len({s.pid for s in specs}) != len(specs):
        raise DependencyError("duplicate process ids in subset")

    writers: dict[tuple[str, int], int] = {}
    versions_present: dict[str, list[int]] = defaultdict(list)
    for spec in specs:
        for ref in spec.writes:
            key = (ref.identity, ref.version)
            if key in writers:
                raise DependencyError(
                    f"both P{writers[key]} and {spec.label} write {ref}"
                )
            writers[key] = spec.pid
            versions_present[ref.identity].append(ref.version)

    graph = nx.DiGraph()
    for spec in specs:
        graph.add_node(spec.pid, spec=spec)

    readers: dict[tuple[str, int], list[int]] = defaultdict(list)
    for spec in specs:
        for identity, version in _resolve_reads(spec, versions_present):
            readers[(identity, version)].append(spec.pid)
            producer = writers.get((identity, version))
            if producer is not None and producer != spec.pid:
                graph.add_edge(producer, spec.pid, kind="raw", artifact=identity)

    # WAW and WAR edges between consecutive versions.
    for identity, versions in versions_present.items():
        ordered = sorted(versions)
        for earlier, later in zip(ordered, ordered[1:]):
            w_early = writers[(identity, earlier)]
            w_late = writers[(identity, later)]
            graph.add_edge(w_early, w_late, kind="waw", artifact=identity)
            for reader in readers.get((identity, earlier), []):
                if reader != w_late:
                    graph.add_edge(reader, w_late, kind="war", artifact=identity)

    if not nx.is_directed_acyclic_graph(graph):
        cycle = nx.find_cycle(graph)
        raise DependencyError(f"process graph has a cycle: {cycle}")
    return graph


def validate_sequential_order(order: list[int] | tuple[int, ...]) -> None:
    """Raise unless the linear order satisfies every dependency."""
    graph = build_process_graph(list(order))
    position = {pid: i for i, pid in enumerate(order)}
    for a, b in graph.edges:
        if position[a] >= position[b]:
            data = graph.edges[a, b]
            raise StageOrderError(
                f"order runs P{b} before its {data['kind'].upper()} "
                f"dependency P{a} (artifact {data['artifact']})"
            )


def validate_stage_plan(stages: list[tuple[str, tuple[int, ...]]]) -> None:
    """Raise unless the stage plan is executable with per-stage barriers.

    Requirements: every process appears exactly once; all dependency
    edges point to the same or a later stage; and no edge joins two
    processes of the same stage (stage members run as parallel tasks,
    so they must be independent).
    """
    pids: list[int] = []
    stage_of: dict[int, int] = {}
    for idx, (_name, members) in enumerate(stages):
        for pid in members:
            if pid in stage_of:
                raise StageOrderError(f"P{pid} appears in more than one stage")
            stage_of[pid] = idx
            pids.append(pid)
    graph = build_process_graph(pids)
    for a, b in graph.edges:
        data = graph.edges[a, b]
        if stage_of[a] > stage_of[b]:
            raise StageOrderError(
                f"stage plan runs P{b} (stage {stages[stage_of[b]][0]}) before its "
                f"{data['kind'].upper()} dependency P{a} (stage {stages[stage_of[a]][0]})"
            )
        if stage_of[a] == stage_of[b]:
            raise StageOrderError(
                f"stage {stages[stage_of[a]][0]} contains dependent processes "
                f"P{a} -> P{b} (artifact {data['artifact']}); stage members must be independent"
            )


def parallelizable_sets(pids: list[int] | tuple[int, ...]) -> list[list[int]]:
    """Antichain layers of the dependency DAG (topological generations).

    Layer k holds the processes whose longest dependency chain has
    length k; all members of a layer are mutually independent and could
    run concurrently.  This is the discovery step behind the paper's
    11-stage reordering.
    """
    graph = build_process_graph(list(pids))
    return [sorted(generation) for generation in nx.topological_generations(graph)]


def critical_path(pids: list[int] | tuple[int, ...], weights: dict[int, float]) -> tuple[list[int], float]:
    """Longest weighted path through the dependency DAG.

    ``weights`` maps pid to its execution cost; the returned path is
    the theoretical lower bound on any parallel schedule's makespan.
    """
    graph = build_process_graph(list(pids))
    for pid in graph.nodes:
        if pid not in weights:
            raise DependencyError(f"no weight for P{pid}")
    best: dict[int, tuple[float, list[int]]] = {}
    for pid in nx.topological_sort(graph):
        incoming = [best[p] for p in graph.predecessors(pid)]
        base, path = max(incoming, key=lambda t: t[0]) if incoming else (0.0, [])
        best[pid] = (base + weights[pid], path + [pid])
    cost, path = max(best.values(), key=lambda t: t[0])
    return path, cost
