"""Process metadata: language, cost profile, declared inputs/outputs.

This is the machine-readable form of the paper's Fig. 5/Fig. 9
annotations.  Artifact references are *versioned*: when a later
process overwrites a file (P12 re-splits components, P13 re-corrects
V2 records, P14 rewrites metadata, P15 overwrites P6's plots), the
overwrite is a new version of the same artifact identity.  The
dependency analysis derives read-after-write, write-after-read and
write-after-write edges from these declarations — the "careful
analysis of input/output data dependencies" the paper performs by
hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.context import RunContext
from repro.core.processes.p00_flags import run_p00
from repro.core.processes.p01_gather import run_p01
from repro.core.processes.p02_params import run_p02
from repro.core.processes.p03_separate import run_p03
from repro.core.processes.p04_correct import run_p04
from repro.core.processes.p05_metadata import run_p05
from repro.core.processes.p06_plot_raw import run_p06
from repro.core.processes.p07_fourier import run_p07
from repro.core.processes.p08_fourier_meta import run_p08
from repro.core.processes.p09_plot_fourier import run_p09
from repro.core.processes.p10_corners import run_p10
from repro.core.processes.p11_flags2 import run_p11
from repro.core.processes.p12_separate2 import run_p12
from repro.core.processes.p13_correct2 import run_p13
from repro.core.processes.p14_metadata2 import run_p14
from repro.core.processes.p15_plot_acc import run_p15
from repro.core.processes.p16_response import run_p16
from repro.core.processes.p17_response_meta import run_p17
from repro.core.processes.p18_plot_response import run_p18
from repro.core.processes.p19_gem import run_p19

#: Version sentinel meaning "the newest version present in the run".
LATEST = -1


@dataclass(frozen=True)
class ArtifactRef:
    """A versioned reference to an artifact identity.

    ``version=LATEST`` in a read means the process consumes whatever
    the newest in-run version of the file is (its content is identical
    across versions, so any resolves correctly — but the *ordering*
    constraint tracks the newest writer present).
    """

    identity: str
    version: int = 1

    def __str__(self) -> str:
        v = "latest" if self.version == LATEST else str(self.version)
        return f"{self.identity}#{v}"


def _r(identity: str, version: int = 1) -> ArtifactRef:
    return ArtifactRef(identity, version)


@dataclass(frozen=True)
class ProcessSpec:
    """Static description of one pipeline process."""

    pid: int
    name: str
    lang: str  # "cpp" | "fortran"
    cost: str  # "light" | "heavy_io" | "heavy_flops" | "plotting"
    reads: tuple[ArtifactRef, ...]
    writes: tuple[ArtifactRef, ...]
    run: Callable[[RunContext], None]

    @property
    def label(self) -> str:
        """Short display label, e.g. ``P16``."""
        return f"P{self.pid}"


#: All twenty processes, keyed by pid.
PROCESSES: dict[int, ProcessSpec] = {
    spec.pid: spec
    for spec in (
        ProcessSpec(
            0, "initialize flags", "cpp", "light",
            reads=(),
            writes=(_r("flags"),),
            run=run_p00,
        ),
        ProcessSpec(
            1, "gather input data files", "cpp", "heavy_io",
            reads=(_r("raw_v1"),),
            writes=(_r("v1_list"),),
            run=run_p01,
        ),
        ProcessSpec(
            2, "initialize filter parameters", "fortran", "light",
            reads=(),
            writes=(_r("filter_params"),),
            run=run_p02,
        ),
        ProcessSpec(
            3, "separate data by components", "fortran", "heavy_io",
            reads=(_r("v1_list"), _r("raw_v1")),
            writes=(_r("comp_v1", 1),),
            run=run_p03,
        ),
        ProcessSpec(
            4, "apply default filters", "fortran", "heavy_flops",
            reads=(_r("filter_params"), _r("comp_v1", 1)),
            writes=(_r("comp_v2", 1), _r("maxvals"),),
            run=run_p04,
        ),
        ProcessSpec(
            5, "initialize metadata files", "fortran", "light",
            reads=(_r("v1_list"),),
            writes=(_r("acc_meta", 1), _r("fourier_meta", 1), _r("response_meta", 1)),
            run=run_p05,
        ),
        ProcessSpec(
            6, "plot uncorrected signals", "fortran", "plotting",
            reads=(_r("acc_meta", 1), _r("comp_v2", 1)),
            writes=(_r("plot_acc", 1),),
            run=run_p06,
        ),
        ProcessSpec(
            7, "apply fourier transformation", "fortran", "heavy_flops",
            reads=(_r("fourier_meta", 1), _r("comp_v2", 1)),
            writes=(_r("comp_f"),),
            run=run_p07,
        ),
        ProcessSpec(
            8, "initialize fourier filelist metadata", "fortran", "light",
            reads=(_r("v1_list"),),
            writes=(_r("fouriergraph_meta"),),
            run=run_p08,
        ),
        ProcessSpec(
            9, "plot fourier spectrum", "fortran", "plotting",
            reads=(_r("fouriergraph_meta"), _r("comp_f")),
            writes=(_r("plot_fourier"),),
            run=run_p09,
        ),
        ProcessSpec(
            10, "obtain FSL & FPL values", "cpp", "heavy_flops",
            reads=(_r("fouriergraph_meta"), _r("comp_f"), _r("filter_params")),
            writes=(_r("filter_corrected"),),
            run=run_p10,
        ),
        ProcessSpec(
            11, "initialize flags (second)", "cpp", "light",
            reads=(),
            writes=(_r("flags2"),),
            run=run_p11,
        ),
        ProcessSpec(
            12, "separate data by components (again)", "fortran", "heavy_io",
            reads=(_r("v1_list"), _r("raw_v1")),
            writes=(_r("comp_v1", 2),),
            run=run_p12,
        ),
        ProcessSpec(
            13, "obtain corrected signals", "fortran", "heavy_flops",
            reads=(_r("filter_corrected"), _r("comp_v1", LATEST)),
            writes=(_r("comp_v2", 2), _r("maxvals2"),),
            run=run_p13,
        ),
        ProcessSpec(
            14, "initialize metadata files (again)", "fortran", "light",
            reads=(_r("v1_list"),),
            writes=(_r("acc_meta", 2), _r("fourier_meta", 2), _r("response_meta", 2)),
            run=run_p14,
        ),
        ProcessSpec(
            15, "plot accelerograph", "fortran", "plotting",
            reads=(_r("acc_meta", LATEST), _r("comp_v2", 2)),
            writes=(_r("plot_acc", 2),),
            run=run_p15,
        ),
        ProcessSpec(
            16, "response spectrum calculation", "fortran", "heavy_flops",
            reads=(_r("response_meta", LATEST), _r("comp_v2", 2)),
            writes=(_r("comp_r"),),
            run=run_p16,
        ),
        ProcessSpec(
            17, "initialize response filelist metadata", "fortran", "light",
            reads=(_r("v1_list"),),
            writes=(_r("responsegraph_meta"),),
            run=run_p17,
        ),
        ProcessSpec(
            18, "plot response spectrum", "fortran", "plotting",
            reads=(_r("responsegraph_meta"), _r("comp_r")),
            writes=(_r("plot_response"),),
            run=run_p18,
        ),
        ProcessSpec(
            19, "generate GEM files", "cpp", "heavy_io",
            reads=(_r("response_meta", LATEST), _r("comp_v2", 2), _r("comp_r")),
            writes=(_r("gem"),),
            run=run_p19,
        ),
    )
}

#: Process order of the Sequential Original implementation (all 20).
ORIGINAL_ORDER: tuple[int, ...] = tuple(range(20))

#: Redundant processes the optimization analysis removes (paper §IV).
REDUNDANT_PROCESSES: tuple[int, ...] = (6, 12, 14)

#: Process order of the Sequential Optimized implementation (17).
OPTIMIZED_ORDER: tuple[int, ...] = tuple(
    pid for pid in ORIGINAL_ORDER if pid not in REDUNDANT_PROCESSES
)
