"""Run configuration.

A :class:`RunContext` bundles everything a pipeline implementation
needs: the workspace, the numerical configuration (filter defaults,
inflection settings, response-spectrum grid) and — for the parallel
implementations — the :class:`ParallelSettings` describing backends and
worker counts.  Two runs with equal contexts produce byte-identical
artifacts regardless of implementation or backend; the test suite
enforces this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.artifacts import Workspace
from repro.dsp.fir import DEFAULT_BANDPASS, BandPassSpec
from repro.parallel.backend import Backend, resolve_workers
from repro.spectra.response import ResponseSpectrumConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.observability.metrics import MetricsRegistry
    from repro.observability.profiling import SamplingProfiler
    from repro.observability.tracer import Tracer
    from repro.resilience.faults import FaultPlan


@dataclass
class ParallelSettings:
    """Backend choices for the parallel implementations.

    ``loop_backend`` drives parallel-for stages; ``task_backend``
    drives the task-parallel stages (I, II, XI); ``tool_backend``
    drives the temp-folder tool stages (IV, V, VIII), which the paper
    ran as concurrent external processes.  ``num_workers`` of ``None``
    means one worker per logical processor.
    """

    loop_backend: Backend | str = Backend.THREAD
    task_backend: Backend | str = Backend.THREAD
    tool_backend: Backend | str = Backend.THREAD
    num_workers: int | None = None

    def __post_init__(self) -> None:
        self.loop_backend = Backend.coerce(self.loop_backend)
        self.task_backend = Backend.coerce(self.task_backend)
        self.tool_backend = Backend.coerce(self.tool_backend)

    @classmethod
    def uniform(cls, backend: Backend | str, num_workers: int | None = None) -> "ParallelSettings":
        """Settings with all three backends set to ``backend``.

        The single coercion point for "give me one backend everywhere"
        callers (the CLI's ``--backend``, the :func:`repro.run` facade).
        """
        backend = Backend.coerce(backend)
        return cls(
            loop_backend=backend,
            task_backend=backend,
            tool_backend=backend,
            num_workers=num_workers,
        )

    @property
    def workers(self) -> int:
        """Resolved worker count."""
        return resolve_workers(self.num_workers)


@dataclass
class InflectionSettings:
    """Tunables of the FPL/FSL search (process P10)."""

    min_period: float = 1.0
    smoothing_half_width: int = 4
    persistence: int = 3
    fsl_ratio: float = 0.5
    fallback_period: float = 10.0


@dataclass
class RunContext:
    """Everything one pipeline run needs."""

    workspace: Workspace
    default_filter: BandPassSpec = DEFAULT_BANDPASS
    response_config: ResponseSpectrumConfig = field(default_factory=ResponseSpectrumConfig)
    inflection: InflectionSettings = field(default_factory=InflectionSettings)
    parallel: ParallelSettings = field(default_factory=ParallelSettings)
    #: Fourier-spectrum period band written to F files.
    fourier_max_period: float = 20.0
    #: Taper fraction applied before spectral analysis.
    taper_fraction: float = 0.05
    #: Optional span tracer; every execution layer records into it.
    #: Excluded from equality — tracing never changes artifacts.
    tracer: "Tracer | None" = field(default=None, repr=False, compare=False)
    #: Record every artifact file access of the run (see
    #: :mod:`repro.core.auditing`); cross-check the logs against the
    #: registry with :func:`repro.analysis.audit.audit_findings`.
    #: Excluded from equality — auditing never changes artifacts.
    audit: bool = field(default=False, compare=False)
    #: Stream live lifecycle/telemetry events to ``<root>/.events/``
    #: (see :mod:`repro.observability.events`): run/stage/unit/task
    #: boundaries, resilience retries and quarantines, and periodic
    #: resource heartbeats, tailed by ``repro-top`` and stitched into
    #: the HTML run report.  Excluded from equality — telemetry never
    #: changes artifacts.
    events: bool = field(default=False, compare=False)
    #: Optional run-metrics registry (see
    #: :mod:`repro.observability.metrics`); the runtime and stage
    #: executors count chunks, tasks, I/O bytes and data points into
    #: it.  Setting it implicitly enables the artifact audit hooks for
    #: the run (they are the byte-count source), without the exit-time
    #: conformance check that :attr:`audit` requests.
    #: Excluded from equality — metrics never change artifacts.
    metrics: "MetricsRegistry | None" = field(default=None, repr=False, compare=False)
    #: Optional sampling profiler (see
    #: :mod:`repro.observability.profiling`); the runner installs it
    #: for the run's duration, so driver threads are sampled directly
    #: and pool workers ship profile shards home with their results.
    #: Excluded from equality — profiling never changes artifacts.
    profiler: "SamplingProfiler | None" = field(default=None, repr=False, compare=False)
    #: Optional fault plan (see :mod:`repro.resilience`): the run
    #: executes with the plan's injected faults, retry policy, and
    #: quarantine semantics, and its result carries the failure
    #: reports.  ``None`` (the default) leaves the clean path entirely
    #: untouched.  Excluded from equality: two contexts differing only
    #: in the plan still describe the same pipeline configuration.
    resilience: "FaultPlan | None" = field(default=None, repr=False, compare=False)

    @classmethod
    def for_directory(cls, root: Path | str, **kwargs: object) -> "RunContext":
        """Context rooted at ``root`` (creating the skeleton)."""
        return cls(workspace=Workspace(root).create(), **kwargs)  # type: ignore[arg-type]

    def stations(self) -> list[str]:
        """Station codes of the run's input files."""
        return self.workspace.input_stations()
