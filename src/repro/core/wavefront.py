"""Wavefront-scheduled implementation (the paper's §VIII future work).

The paper's fully-parallelized version keeps a barrier between every
stage: all stations must finish stage IV before any may start stage V,
and so on.  But after stages I–II, the per-station work is *semantically
independent*: station A's response spectra never read anything of
station B.  The "wavefront scheduling" direction of §VIII exploits
that — each station flows through its whole chain

    separate -> default-correct -> fourier -> corners ->
    definitive-correct -> response (3 traces) -> GEM -> plots

as one pipeline, with stations running concurrently and **no global
barriers** between the former stages.  Load imbalance melts away: a
station with a short record finishes its expensive response stage
while a big station is still filtering.

Output parity: the global artifacts (flags, lists, metadata,
``filter_corrected.par``, the maxvals files) are written exactly as the
staged implementations write them — corner specs are collected and
written sorted, per-trace maxima lines are merged in sorted name
order — so the wavefront run remains byte-identical to the other four
implementations (enforced by the integration tests).
"""

from __future__ import annotations

import time
from functools import partial

from repro.core.artifacts import (
    FILTER_CORRECTED,
    FILTER_PARAMS,
    MAXVALS,
    MAXVALS2,
    Workspace,
)
from repro.core.auditing import unit_scope
from repro.core.context import RunContext
from repro.core.processes.p00_flags import run_p00
from repro.core.processes.p01_gather import run_p01
from repro.core.processes.p02_params import run_p02
from repro.core.processes.p03_separate import separate_station, stations_from_list
from repro.core.processes.p05_metadata import run_p05
from repro.core.processes.p08_fourier_meta import run_p08
from repro.core.processes.p10_corners import analyze_component
from repro.core.processes.p11_flags2 import run_p11
from repro.core.processes.p16_response import response_for_trace
from repro.core.processes.p17_response_meta import run_p17
from repro.core.processes.p19_gem import set_data_apart
from repro.core.runner import PipelineImplementation, PipelineResult, ProcessTiming
from repro.core.staged import correction_instance, fourier_instance
from repro.core.tempfolders import run_staged_instance
from repro.dsp.fir import BandPassSpec
from repro.formats.common import COMPONENTS
from repro.formats.fourier import component_f_name, read_fourier
from repro.formats.params import FilterParams, read_filter_params, write_filter_params
from repro.formats.response import component_r_name, read_response
from repro.formats.v2 import component_v2_name, read_v2
from repro.observability.tracer import maybe_span
from repro.parallel.omp import TaskGroup, parallel_for
from repro.plotting.seismo import (
    plot_accelerograph,
    plot_fourier_spectrum,
    plot_response_spectrum,
)


def _rename_max_parts(workspace: Workspace, station: str, suffix: str) -> None:
    """Stash a station's fresh ``*.max`` parts under a pass-specific
    suffix so the two correction passes do not collide."""
    for comp in COMPONENTS:
        part = workspace.work_dir / f"{station}{comp}.max"
        part.rename(workspace.work_dir / f"{station}{comp}.{suffix}")


def _merge_suffixed(workspace: Workspace, suffix: str, out_name: str) -> None:
    """Merge suffixed maxima parts in sorted order (identical bytes to
    :func:`repro.core.processes.common.merge_max_files`)."""
    parts = sorted(workspace.work_dir.glob(f"*.{suffix}"))
    if not parts:
        return
    lines = [p.read_text().rstrip("\n") for p in parts]
    (workspace.work_dir / out_name).write_text("\n".join(lines) + "\n")
    for p in parts:
        p.unlink()


def process_station_wavefront(
    ctx: RunContext, item: tuple[int, str]
) -> list[tuple[str, str, BandPassSpec]]:
    """One station's complete pipeline (the wavefront unit).

    ``item`` is ``(ordinal, station)`` — the ordinal keeps each
    station's temp folders distinct while the wavefronts overlap.
    Returns the definitive corner specs found for the station's three
    components so the driver can assemble ``filter_corrected.par``.
    """
    index, station = item
    workspace = ctx.workspace
    root = str(workspace.root)

    # P3: split the raw record.
    separate_station(root, station)

    # P4 (this station only): default correction via a staged tool
    # instance — identical bytes to the barriered implementations.
    # Each section carries its own audit scope (process, station) so
    # concurrent wavefronts stay distinguishable per unit.
    with unit_scope("P4", station):
        run_staged_instance(root, correction_instance("IV", index, station, FILTER_PARAMS))
        _rename_max_parts(workspace, station, "max1")

    # P7: Fourier spectra.
    with unit_scope("P7", station):
        run_staged_instance(root, fourier_instance("V", index, station, ctx))

    # P10 (this station): corner search per component, seeded from the
    # on-disk default corners exactly like the staged implementations.
    with unit_scope("P10", station):
        base = read_filter_params(workspace.work(FILTER_PARAMS), process="P10").default
    specs: list[tuple[str, str, BandPassSpec]] = []
    for comp in COMPONENTS:
        specs.append(
            analyze_component(
                root,
                component_f_name(station, comp),
                base,
                ctx.inflection,
            )
        )

    # P13 (this station): definitive correction.  The global
    # filter_corrected.par does not exist yet, so stage a private
    # per-station parameter file carrying exactly this station's
    # overrides (spec_for() resolves identically).
    with unit_scope("P13", station):
        params = FilterParams(default=base)
        for s, comp, spec in specs:
            params.set_override(s, comp, spec)
        private = f"_wf_{station}.par"
        write_filter_params(workspace.work(private), params)
        instance = correction_instance("VIII", index, station, private)
        run_staged_instance(root, instance)
        workspace.work(private).unlink()
        _rename_max_parts(workspace, station, "max2")

    # P16: response spectra for the three traces.
    for comp in COMPONENTS:
        response_for_trace(
            root,
            component_v2_name(station, comp),
            component_r_name(station, comp),
            ctx.response_config,
        )

    # P19: GEM exports (six source files per station).
    for comp in COMPONENTS:
        set_data_apart(root, component_v2_name(station, comp), False)
        set_data_apart(root, component_r_name(station, comp), True)

    # P9/P15/P18: this station's three plot files.
    with unit_scope("P9", station):
        f_records = {
            comp: read_fourier(workspace.component_f(station, comp), process="P9")
            for comp in COMPONENTS
        }
        plot_fourier_spectrum(workspace.plot_fourier(station), f_records)
    with unit_scope("P15", station):
        v2_records = {
            comp: read_v2(workspace.component_v2(station, comp), process="P15")
            for comp in COMPONENTS
        }
        plot_accelerograph(workspace.plot_accelerograph(station), v2_records)
    with unit_scope("P18", station):
        r_records = {
            comp: read_response(workspace.component_r(station, comp), process="P18")
            for comp in COMPONENTS
        }
        plot_response_spectrum(workspace.plot_response(station), r_records)
    return specs


class WavefrontParallel(PipelineImplementation):
    """Per-station pipelining with no inter-stage barriers.

    Not one of the paper's four implementations — it realizes the
    "wavefront scheduling" improvement sketched in the paper's
    discussion (§VIII) on top of the same processes and artifacts.
    """

    name = "wavefront-parallel"
    description = "Wavefront: per-station pipelines, no stage barriers (§VIII)"

    def execute(self, ctx: RunContext, result: PipelineResult) -> None:
        tracer = ctx.tracer
        # Prologue: stages I, II and VII exactly as before (they build
        # the global lists/metadata every station unit relies on).
        with maybe_span(
            tracer, "prologue", kind="stage", stage="prologue",
            strategy="tasks", implementation=self.name,
        ) as prologue_span:
            start = time.perf_counter()
            with TaskGroup(
                backend=ctx.parallel.task_backend,
                num_workers=min(ctx.parallel.workers, 2),
                tracer=tracer,
                metrics=ctx.metrics,
            ) as tg:
                tg.task(run_p00, ctx)
                tg.task(run_p01, ctx)
            with TaskGroup(
                backend=ctx.parallel.task_backend,
                num_workers=min(ctx.parallel.workers, 4),
                tracer=tracer,
                metrics=ctx.metrics,
            ) as tg:
                tg.task(run_p02, ctx)
                tg.task(run_p05, ctx)
                tg.task(run_p08, ctx)
                tg.task(run_p17, ctx)
            with maybe_span(tracer, "run_p11", kind="process", pid=11, stage="prologue"):
                run_p11(ctx)
            elapsed = time.perf_counter() - start
        result.stage_durations["prologue"] = (
            prologue_span.duration_s if prologue_span is not None else elapsed
        )

        # The wavefront: stations flow through their chains concurrently.
        with maybe_span(
            tracer, "wavefront", kind="stage", stage="wavefront",
            strategy="loop", implementation=self.name,
        ) as wavefront_span:
            start = time.perf_counter()
            stations = stations_from_list(ctx.workspace)
            all_specs = parallel_for(
                partial(process_station_wavefront, ctx),
                list(enumerate(stations)),
                backend=ctx.parallel.loop_backend,
                num_workers=ctx.parallel.workers,
                tracer=tracer,
                span="station_pipeline",
                metrics=ctx.metrics,
            )
            elapsed = time.perf_counter() - start
        result.stage_durations["wavefront"] = (
            wavefront_span.duration_s if wavefront_span is not None else elapsed
        )

        # Epilogue: assemble the global artifacts deterministically.
        with maybe_span(
            tracer, "epilogue", kind="stage", stage="epilogue",
            strategy="seq", implementation=self.name,
        ) as epilogue_span:
            start = time.perf_counter()
            with unit_scope("P10"):
                base = read_filter_params(
                    ctx.workspace.work(FILTER_PARAMS), process="P10"
                ).default
                params = FilterParams(default=base)
                for specs in all_specs:
                    for station, comp, spec in specs:
                        params.set_override(station, comp, spec)
                write_filter_params(ctx.workspace.work(FILTER_CORRECTED), params)
            with unit_scope("P4"):
                _merge_suffixed(ctx.workspace, "max1", MAXVALS)
            with unit_scope("P13"):
                _merge_suffixed(ctx.workspace, "max2", MAXVALS2)
            tmp = ctx.workspace.tmp_dir
            if tmp.exists() and not any(tmp.iterdir()):
                tmp.rmdir()
            elapsed = time.perf_counter() - start
        result.stage_durations["epilogue"] = (
            epilogue_span.duration_s if epilogue_span is not None else elapsed
        )
        result.processes.append(
            ProcessTiming(
                pid=-1,
                name="wavefront station pipelines",
                stage="wavefront",
                duration_s=result.stage_durations["wavefront"],
            )
        )
