"""The partially-parallelized implementation (paper §V).

Parallelizes the 5 stages whose processes live in C++ or are cheap
Fortran programs: I and II (task parallelism), VI (the inner
three-component loop of the FPL/FSL search), X (the GEM loop) and XI
(the three plotting processes as tasks).  Stages III, IV, V, VIII and
IX stay sequential — those require the temp-folder machinery or
Fortran-side loops, which is the Fully Parallelized implementation's
contribution.
"""

from __future__ import annotations

from repro.core.staged import StagedImplementationBase
from repro.core.stages import LOOP, PARTIAL_PARALLEL_STAGES, STAGES, TASKS


class PartiallyParallel(StagedImplementationBase):
    """5 of 11 stages parallel (Fig. 8)."""

    name = "partial-parallel"
    description = "Partially Parallelized: stages I, II, VI, X, XI parallel"
    strategies = {
        stage.name: stage.partial_strategy
        for stage in STAGES
        if stage.name in PARTIAL_PARALLEL_STAGES
        and stage.partial_strategy in (TASKS, LOOP)
    }
