"""Incremental (make-style) pipeline execution.

Observatories rerun the pipeline constantly — after a parameter tweak,
after one more station's record arrives, after a crash.  Rerunning all
20 processes from scratch every time is the very cost the paper
attacks; this runner attacks the *other* axis: skip every process
whose inputs and outputs are already up to date.

Mechanism, built on the registry's declared reads/writes:

1. before running a process, resolve its declared read identities to
   concrete files (:meth:`Workspace.artifact_paths`) and fingerprint
   them (sha256 over contents) together with the run configuration;
2. if the fingerprint matches the recorded state **and** every
   declared output still exists with its recorded digest, skip;
3. if the inputs match but the outputs were overwritten (the V2
   records are written twice: P4's default correction, then P13's
   definitive one) or deleted, **restore** the process's cached output
   bytes instead of recomputing — every executed process deposits its
   outputs in ``<workspace>/.cache/p<pid>/``;
4. otherwise run the process, cache its outputs and record the new
   fingerprints.

Because a skipped or restored process leaves its outputs
byte-identical, downstream fingerprints are unchanged and the skipping
cascades — an untouched workspace re-runs in milliseconds (two cheap
byte restores for the twice-written V2 generation), while any edit
(a changed input record, a deleted artifact, a new filter default)
re-executes exactly the affected suffix of the dependency graph.

State lives in ``<workspace>/.pipeline_state.json`` and
``<workspace>/.cache/`` — outside ``work/`` so the artifact inventory
stays identical to the other implementations'.
"""

from __future__ import annotations

import hashlib
import json
import logging
import shutil
import time
from pathlib import Path

logger = logging.getLogger("repro.core")

from repro.core.context import RunContext
from repro.core.registry import OPTIMIZED_ORDER, PROCESSES
from repro.core.runner import PipelineImplementation, PipelineResult, ProcessTiming

STATE_FILE = ".pipeline_state.json"


def _config_fingerprint(ctx: RunContext) -> str:
    """Fingerprint of the numeric configuration that shapes outputs."""
    payload = {
        "filter": [
            ctx.default_filter.f_stop_low,
            ctx.default_filter.f_pass_low,
            ctx.default_filter.f_pass_high,
            ctx.default_filter.f_stop_high,
        ],
        "periods": list(map(float, ctx.response_config.periods)),
        "dampings": list(ctx.response_config.dampings),
        "method": ctx.response_config.method,
        "pseudo": ctx.response_config.pseudo,
        "taper": ctx.taper_fraction,
        "max_period": ctx.fourier_max_period,
        "inflection": [
            ctx.inflection.min_period,
            ctx.inflection.smoothing_half_width,
            ctx.inflection.persistence,
            ctx.inflection.fsl_ratio,
            ctx.inflection.fallback_period,
        ],
    }
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


def _digest_files(paths: list[Path]) -> str:
    """One digest over a file set: names, presence and contents."""
    h = hashlib.sha256()
    for path in sorted(paths):
        h.update(path.name.encode())
        if path.exists():
            h.update(b"1")
            h.update(hashlib.sha256(path.read_bytes()).digest())
        else:
            h.update(b"0")
    return h.hexdigest()


class IncrementalRunner(PipelineImplementation):
    """Sequential-optimized order with up-to-date processes skipped.

    The final artifacts are byte-identical to every other
    implementation's (same process bodies); only the amount of work
    re-done differs.  :attr:`executed` and :attr:`skipped` report what
    the last run actually did.
    """

    name = "incremental"
    description = "Incremental: skip processes whose inputs/outputs are unchanged"

    def __init__(self) -> None:
        self.executed: list[int] = []
        self.skipped: list[int] = []
        self.restored: list[int] = []

    def _state_path(self, ctx: RunContext) -> Path:
        return ctx.workspace.root / STATE_FILE

    def _cache_dir(self, ctx: RunContext, pid: int) -> Path:
        return ctx.workspace.root / ".cache" / f"p{pid:02d}"

    def _load_state(self, ctx: RunContext) -> dict:
        path = self._state_path(ctx)
        if not path.exists():
            return {}
        try:
            return json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            return {}

    def _cache_outputs(self, ctx: RunContext, pid: int, write_paths: list[Path]) -> None:
        cache = self._cache_dir(ctx, pid)
        if cache.exists():
            shutil.rmtree(cache)
        cache.mkdir(parents=True)
        for path in write_paths:
            if path.exists():
                shutil.copy2(path, cache / path.name)

    def _restore_outputs(self, ctx: RunContext, pid: int, write_paths: list[Path]) -> bool:
        """Copy cached output bytes back; False if the cache is stale."""
        cache = self._cache_dir(ctx, pid)
        if not cache.is_dir():
            return False
        cached_names = {p.name for p in cache.iterdir()}
        if {p.name for p in write_paths} - cached_names:
            return False
        for path in write_paths:
            shutil.copy2(cache / path.name, path)
        return True

    def execute(self, ctx: RunContext, result: PipelineResult) -> None:
        self.executed = []
        self.skipped = []
        self.restored = []
        stations = ctx.stations()
        config_fp = _config_fingerprint(ctx)
        state = self._load_state(ctx)
        workspace = ctx.workspace

        for pid in OPTIMIZED_ORDER:
            spec = PROCESSES[pid]
            read_paths: list[Path] = []
            for ref in spec.reads:
                read_paths.extend(workspace.artifact_paths(ref.identity, stations))
            write_paths: list[Path] = []
            for ref in spec.writes:
                write_paths.extend(workspace.artifact_paths(ref.identity, stations))

            inputs_fp = config_fp + _digest_files(read_paths)
            entry = state.get(str(pid))
            if entry is not None and entry.get("inputs") == inputs_fp:
                if entry.get("outputs") == _digest_files(write_paths):
                    self.skipped.append(pid)
                    logger.debug("%s up to date, skipped", spec.label)
                    result.stage_durations[spec.label] = 0.0
                    continue
                # Same inputs, outputs overwritten or deleted: restore
                # the cached bytes instead of recomputing, then verify.
                if (
                    self._restore_outputs(ctx, pid, write_paths)
                    and entry.get("outputs") == _digest_files(write_paths)
                ):
                    self.restored.append(pid)
                    logger.debug("%s restored from the output cache", spec.label)
                    result.stage_durations[spec.label] = 0.0
                    continue

            start = time.perf_counter()
            spec.run(ctx)
            elapsed = time.perf_counter() - start
            self.executed.append(pid)
            result.processes.append(
                ProcessTiming(pid=pid, name=spec.name, stage=spec.label, duration_s=elapsed)
            )
            result.stage_durations[spec.label] = elapsed
            self._cache_outputs(ctx, pid, write_paths)
            state[str(pid)] = {
                "inputs": inputs_fp,
                "outputs": _digest_files(write_paths),
            }

        self._state_path(ctx).write_text(json.dumps(state, indent=1, sort_keys=True))
