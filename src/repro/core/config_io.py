"""Run-configuration files.

Observatory deployments pin their processing parameters in a config
file rather than code; this module round-trips a :class:`RunContext`'s
numerical settings through JSON, and backs ``repro-process --config``.

Schema (all sections optional; omitted values keep the defaults)::

    {
      "filter":   {"f_stop_low": 0.05, "f_pass_low": 0.1,
                   "f_pass_high": 25.0, "f_stop_high": 30.0},
      "response": {"periods": {"count": 100, "t_min": 0.02, "t_max": 20.0},
                   "dampings": [0.0, 0.02, 0.05, 0.1, 0.2],
                   "method": "nigam_jennings", "pseudo": false},
      "inflection": {"min_period": 1.0, "smoothing_half_width": 4,
                     "persistence": 3, "fsl_ratio": 0.5,
                     "fallback_period": 10.0},
      "parallel": {"loop_backend": "thread", "task_backend": "thread",
                   "tool_backend": "thread", "num_workers": 8},
      "taper_fraction": 0.05,
      "fourier_max_period": 20.0
    }

``response.periods`` also accepts an explicit list of seconds.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.context import InflectionSettings, ParallelSettings, RunContext
from repro.dsp.fir import BandPassSpec
from repro.errors import PipelineError
from repro.spectra.response import ResponseSpectrumConfig, default_periods


def load_config(path: Path | str) -> dict:
    """Load and minimally validate a configuration file."""
    path = Path(path)
    if not path.exists():
        raise PipelineError(f"config file not found: {path}")
    try:
        config = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise PipelineError(f"{path}: invalid JSON ({exc})") from exc
    if not isinstance(config, dict):
        raise PipelineError(f"{path}: config must be a JSON object")
    known = {
        "filter", "response", "inflection", "parallel",
        "taper_fraction", "fourier_max_period",
    }
    unknown = set(config) - known
    if unknown:
        raise PipelineError(f"{path}: unknown config keys {sorted(unknown)}")
    return config


def _filter_from(config: dict) -> BandPassSpec:
    section = config.get("filter", {})
    from repro.dsp.fir import DEFAULT_BANDPASS

    return BandPassSpec(
        f_stop_low=float(section.get("f_stop_low", DEFAULT_BANDPASS.f_stop_low)),
        f_pass_low=float(section.get("f_pass_low", DEFAULT_BANDPASS.f_pass_low)),
        f_pass_high=float(section.get("f_pass_high", DEFAULT_BANDPASS.f_pass_high)),
        f_stop_high=float(section.get("f_stop_high", DEFAULT_BANDPASS.f_stop_high)),
    )


def _response_from(config: dict) -> ResponseSpectrumConfig:
    section = config.get("response", {})
    periods_cfg = section.get("periods", {})
    if isinstance(periods_cfg, list):
        periods = np.asarray(periods_cfg, dtype=float)
    else:
        periods = default_periods(
            int(periods_cfg.get("count", 100)),
            float(periods_cfg.get("t_min", 0.02)),
            float(periods_cfg.get("t_max", 20.0)),
        )
    return ResponseSpectrumConfig(
        periods=periods,
        dampings=tuple(section.get("dampings", (0.0, 0.02, 0.05, 0.10, 0.20))),
        method=section.get("method", "nigam_jennings"),
        pseudo=bool(section.get("pseudo", False)),
    )


def _inflection_from(config: dict) -> InflectionSettings:
    section = config.get("inflection", {})
    defaults = InflectionSettings()
    return InflectionSettings(
        min_period=float(section.get("min_period", defaults.min_period)),
        smoothing_half_width=int(
            section.get("smoothing_half_width", defaults.smoothing_half_width)
        ),
        persistence=int(section.get("persistence", defaults.persistence)),
        fsl_ratio=float(section.get("fsl_ratio", defaults.fsl_ratio)),
        fallback_period=float(section.get("fallback_period", defaults.fallback_period)),
    )


def _parallel_from(config: dict) -> ParallelSettings:
    section = config.get("parallel", {})
    return ParallelSettings(
        loop_backend=section.get("loop_backend", "thread"),
        task_backend=section.get("task_backend", "thread"),
        tool_backend=section.get("tool_backend", "thread"),
        num_workers=section.get("num_workers"),
    )


def context_from_config(root: Path | str, config: dict) -> RunContext:
    """Build a context at ``root`` from a loaded configuration."""
    return RunContext.for_directory(
        root,
        default_filter=_filter_from(config),
        response_config=_response_from(config),
        inflection=_inflection_from(config),
        parallel=_parallel_from(config),
        taper_fraction=float(config.get("taper_fraction", 0.05)),
        fourier_max_period=float(config.get("fourier_max_period", 20.0)),
    )


def config_from_context(ctx: RunContext) -> dict:
    """Serialize a context's settings (inverse of the builders above)."""
    return {
        "filter": {
            "f_stop_low": ctx.default_filter.f_stop_low,
            "f_pass_low": ctx.default_filter.f_pass_low,
            "f_pass_high": ctx.default_filter.f_pass_high,
            "f_stop_high": ctx.default_filter.f_stop_high,
        },
        "response": {
            "periods": [float(p) for p in ctx.response_config.periods],
            "dampings": list(ctx.response_config.dampings),
            "method": ctx.response_config.method,
            "pseudo": ctx.response_config.pseudo,
        },
        "inflection": {
            "min_period": ctx.inflection.min_period,
            "smoothing_half_width": ctx.inflection.smoothing_half_width,
            "persistence": ctx.inflection.persistence,
            "fsl_ratio": ctx.inflection.fsl_ratio,
            "fallback_period": ctx.inflection.fallback_period,
        },
        "parallel": {
            "loop_backend": ctx.parallel.loop_backend.value,
            "task_backend": ctx.parallel.task_backend.value,
            "tool_backend": ctx.parallel.tool_backend.value,
            "num_workers": ctx.parallel.num_workers,
        },
        "taper_fraction": ctx.taper_fraction,
        "fourier_max_period": ctx.fourier_max_period,
    }


def save_config(path: Path | str, ctx: RunContext) -> None:
    """Write a context's settings as a config file."""
    Path(path).write_text(json.dumps(config_from_context(ctx), indent=2) + "\n")
