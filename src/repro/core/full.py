"""The fully-parallelized implementation (paper §VI).

Every stage runs parallel except VII (P11, which finishes in under two
milliseconds).  On top of the partial implementation's stages it adds:

- stage III — the component separation as a parallel loop over
  stations (the paper's Fortran ``omp do``);
- stages IV, V, VIII — concurrent legacy-tool instances in temporary
  folders with explicit file staging;
- stage IX — the response-spectrum calculation as a parallel loop over
  all 3N component files (the pipeline's dominant cost and its best
  speedup, 5.14x in the paper).
"""

from __future__ import annotations

from repro.core.staged import StagedImplementationBase
from repro.core.stages import FULL_PARALLEL_STAGES, STAGES


class FullyParallel(StagedImplementationBase):
    """10 of 11 stages parallel (Fig. 10)."""

    name = "full-parallel"
    description = "Fully Parallelized: all stages except VII parallel"
    strategies = {
        stage.name: stage.full_strategy
        for stage in STAGES
        if stage.name in FULL_PARALLEL_STAGES
    }
