"""The eleven-stage reordering of the optimized pipeline (paper Fig. 9).

Each stage lists its member processes and the parallel strategy each
parallel implementation applies to it:

========  ==============  ==================  ==================
stage     processes       partially parallel  fully parallel
========  ==============  ==================  ==================
I         P0, P1          tasks               tasks
II        P2, P5, P8, P17 tasks               tasks
III       P3              sequential          loop (stations)
IV        P4              sequential          loop (temp folders)
V         P7              sequential          loop (temp folders)
VI        P10             loop (components)   loop (components)
VII       P11             sequential          sequential (<2 ms)
VIII      P13             sequential          loop (temp folders)
IX        P16             sequential          loop (3N traces)
X         P19             loop (2N files)     loop (2N files)
XI        P9, P15, P18    tasks               tasks
========  ==============  ==================  ==================
"""

from __future__ import annotations

from dataclasses import dataclass

#: Strategy names used in StageSpec.
SEQ = "seq"
LOOP = "loop"
TASKS = "tasks"
TEMP_FOLDERS = "temp_folders"


@dataclass(frozen=True)
class StageSpec:
    """One stage of the reordered pipeline."""

    name: str
    processes: tuple[int, ...]
    partial_strategy: str
    full_strategy: str
    #: What the loop iterates over (documentation for reports).
    loop_unit: str = ""


#: The eleven stages in execution order.
STAGES: tuple[StageSpec, ...] = (
    StageSpec("I", (0, 1), TASKS, TASKS),
    StageSpec("II", (2, 5, 8, 17), TASKS, TASKS),
    StageSpec("III", (3,), SEQ, LOOP, loop_unit="stations"),
    StageSpec("IV", (4,), SEQ, TEMP_FOLDERS, loop_unit="stations"),
    StageSpec("V", (7,), SEQ, TEMP_FOLDERS, loop_unit="stations"),
    StageSpec("VI", (10,), LOOP, LOOP, loop_unit="components"),
    StageSpec("VII", (11,), SEQ, SEQ),
    StageSpec("VIII", (13,), SEQ, TEMP_FOLDERS, loop_unit="stations"),
    StageSpec("IX", (16,), SEQ, LOOP, loop_unit="traces"),
    StageSpec("X", (19,), LOOP, LOOP, loop_unit="files"),
    StageSpec("XI", (9, 15, 18), TASKS, TASKS),
)


def stage_plan() -> list[tuple[str, tuple[int, ...]]]:
    """The plan in the shape :func:`validate_stage_plan` checks."""
    return [(stage.name, stage.processes) for stage in STAGES]


def stage_of_process(pid: int) -> StageSpec:
    """The stage a process belongs to (raises for removed processes)."""
    for stage in STAGES:
        if pid in stage.processes:
            return stage
    raise KeyError(f"P{pid} is not part of the optimized stage plan")


#: Stages parallel in the partially-parallelized implementation (5 of 11).
PARTIAL_PARALLEL_STAGES: tuple[str, ...] = ("I", "II", "VI", "X", "XI")

#: Stages parallel in the fully-parallelized implementation (10 of 11).
FULL_PARALLEL_STAGES: tuple[str, ...] = (
    "I", "II", "III", "IV", "V", "VI", "VIII", "IX", "X", "XI"
)
