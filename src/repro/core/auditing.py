"""Runtime artifact-access auditing hooks.

The registry's read/write declarations are *claims* about what the
process code does; this module is the machinery that observes what it
actually does.  When auditing is enabled for a workspace (a
``<root>/.audit/`` marker directory exists), every
:class:`~repro.core.artifacts.Workspace` accessor returns an
:class:`AuditedPath` whose file opens append one JSON line per access
to a per-(pid, thread) event log inside the marker directory.  Worker
processes need no coordination: they rebuild ``Workspace(root)``, see
the marker, and log to their own files — so the audit works identically
under the serial, thread and process backends.

Attribution: :func:`unit_scope` tags accesses with the pipeline process
(``P16``) and the concurrency unit (a station, a trace, a temp-folder
instance) that performed them.  Scopes do not override an enclosing
scope, so a driver-level scope (``P4`` around a whole stage) survives
into helper calls, while worker threads/processes — which start with an
empty context — get the fine-grained unit set by the loop body itself.

The cross-checking of these logs against the registry lives in
:mod:`repro.analysis.audit`; this module stays a leaf so every layer of
the pipeline can import it.
"""

from __future__ import annotations

import functools
import json
import os
import shutil
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from pathlib import Path, PosixPath, WindowsPath
from typing import Any, Callable, Iterator

#: Marker directory (under the workspace root) that opts a run in.
AUDIT_DIR = ".audit"

#: Active audited roots: str(root) -> Path(root).
_ACTIVE: dict[str, Path] = {}

#: Open event-log writers keyed by (root, pid, thread id).
_writers: dict[tuple[str, int, int], Any] = {}
_writers_lock = threading.Lock()

#: The (process label, unit label, origin pid) performing the current
#: accesses.  The pid guards against fork inheritance: a process pool
#: forks its workers lazily at the first submit, which may happen while
#: the driver thread holds a scope, and the forked worker would carry
#: that scope forever.  A scope whose pid is not ours is stale.
_SCOPE: ContextVar[tuple[str, str, int] | None] = ContextVar(
    "repro_audit_scope", default=None
)


def _live_scope() -> tuple[str, str] | None:
    """The current scope, unless it was inherited across a fork."""
    scope = _SCOPE.get()
    if scope is None or scope[2] != os.getpid():
        return None
    return scope[0], scope[1]


def enable_auditing(root: Path | str) -> Path:
    """Create the marker directory and activate auditing for ``root``."""
    root = Path(root)
    marker = root / AUDIT_DIR
    marker.mkdir(parents=True, exist_ok=True)
    _ACTIVE[str(root)] = root
    return marker


def disable_auditing(root: Path | str) -> None:
    """Deactivate auditing for ``root`` and remove the marker directory."""
    root = Path(root)
    key = str(root)
    _ACTIVE.pop(key, None)
    with _writers_lock:
        for wkey in [k for k in _writers if k[0] == key]:
            try:
                _writers.pop(wkey).close()
            except OSError:  # pragma: no cover - close failures are harmless
                pass
    shutil.rmtree(root / AUDIT_DIR, ignore_errors=True)


def maybe_activate(root: Path) -> bool:
    """Activate auditing for ``root`` if its marker exists (Workspace init)."""
    if (root / AUDIT_DIR).is_dir():
        _ACTIVE[str(root)] = root
        return True
    return False


def is_active(root: Path | str) -> bool:
    """Whether accesses under ``root`` are currently recorded."""
    return str(root) in _ACTIVE


@contextmanager
def unit_scope(process: str, unit: str = "-") -> Iterator[None]:
    """Attribute accesses inside the block to (process, unit).

    A scope never overrides an enclosing one: the outermost attribution
    wins, so a driver's coarse scope is not clobbered by the helpers it
    calls, while fresh worker threads (empty context) take the loop
    body's fine-grained unit.  A scope inherited across a fork (lazily
    spawned process-pool workers copy the submitting thread's context)
    carries a foreign pid and counts as absent.
    """
    if _live_scope() is not None:
        yield
        return
    token = _SCOPE.set((process, unit, os.getpid()))
    try:
        yield
    finally:
        _SCOPE.reset(token)


def current_scope() -> tuple[str, str] | None:
    """The active (process, unit) attribution, if any."""
    return _live_scope()


def process_unit(process: str, unit_arg: int | None = None) -> Callable:
    """Decorator form of :func:`unit_scope` for process/loop-body functions.

    ``unit_arg`` names the positional argument whose value identifies
    the concurrency unit (the station of ``separate_station``, the
    trace of ``response_for_trace``); without it the unit is ``"-"``,
    the process's own top-level scope.
    """

    def decorate(func: Callable) -> Callable:
        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            unit = "-"
            if unit_arg is not None and len(args) > unit_arg:
                unit = str(args[unit_arg])
            with unit_scope(process, unit):
                return func(*args, **kwargs)

        return wrapper

    return decorate


def _writer(root: str):
    key = (root, os.getpid(), threading.get_ident())
    writer = _writers.get(key)
    if writer is None:
        with _writers_lock:
            writer = _writers.get(key)
            if writer is None:
                log_dir = Path(root) / AUDIT_DIR
                name = f"events-{key[1]}-{key[2]}.jsonl"
                writer = open(log_dir / name, "a", buffering=1, encoding="utf-8")
                _writers[key] = writer
    return writer


#: :func:`repro.observability.metrics.record_io`, bound lazily — this
#: module is a leaf the whole pipeline imports, the observability
#: package is not.
_record_io = None


def _artifact_class(rel_path: str) -> str:
    """Metric label grouping artifacts by extension (``v1``, ``max``...)."""
    name = rel_path.rsplit("/", 1)[-1]
    if "." in name:
        return name.rsplit(".", 1)[-1] or "other"
    return "other"


def _metrics_io(rel_path: str, op: str, nbytes: int, count_access: bool = True) -> None:
    """Fold one access into the run's metrics registry, if one is live."""
    global _record_io
    if _record_io is None:
        from repro.observability.metrics import record_io

        _record_io = record_io
    _record_io(op, _artifact_class(rel_path), nbytes, count_access=count_access)


def record(root: Path | str, rel_path: str, op: str, nbytes: int | None = None) -> None:
    """Append one access event (no-op unless ``root`` is audited)."""
    key = str(root)
    if key not in _ACTIVE:
        return
    if rel_path.startswith(AUDIT_DIR):
        return
    scope = _live_scope()
    event = {
        "path": rel_path,
        "op": op,
        "process": scope[0] if scope else None,
        "unit": scope[1] if scope else None,
        "worker": f"{os.getpid()}:{threading.get_ident()}",
        "t": time.time(),
    }
    if nbytes is not None:
        event["bytes"] = nbytes
    _metrics_io(rel_path, op, nbytes or 0)
    try:
        _writer(key).write(json.dumps(event) + "\n")
    except OSError:  # pragma: no cover - a dead log never fails the run
        pass


#: File (inside the marker directory) holding the executed barrier plan.
PLAN_FILE = "plan.json"


def record_plan(root: Path | str, plan: dict) -> None:
    """Store the barrier plan a run is about to execute (no-op unless
    ``root`` is audited).

    ``plan`` is ``{"policy": name, "regions": [{"label": ..., "tasks":
    [names]}]}``; the region index is the vector-clock epoch the
    happens-before cross-check (:mod:`repro.analysis.graphlint`) orders
    recorded accesses by.
    """
    if str(root) not in _ACTIVE:
        return
    path = Path(root) / AUDIT_DIR / PLAN_FILE
    try:
        path.write_text(json.dumps(plan, indent=2), encoding="utf-8")
    except OSError:  # pragma: no cover - a dead log never fails the run
        pass


def load_plan(root: Path | str) -> dict | None:
    """The recorded barrier plan of a run, or ``None`` if none exists."""
    path = Path(root) / AUDIT_DIR / PLAN_FILE
    if not path.is_file():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


@dataclass(frozen=True)
class AuditEvent:
    """One recorded file access."""

    path: str
    op: str  # "read" | "write" | "delete"
    process: str | None
    unit: str | None
    worker: str
    t: float


def iter_events(root: Path | str) -> Iterator[AuditEvent]:
    """Parse every event recorded for ``root`` (any worker, any order)."""
    log_dir = Path(root) / AUDIT_DIR
    for log in sorted(log_dir.glob("events-*.jsonl")):
        for line in log.read_text().splitlines():
            if not line.strip():
                continue
            data = json.loads(line)
            yield AuditEvent(
                path=data["path"],
                op=data["op"],
                process=data.get("process"),
                unit=data.get("unit"),
                worker=data.get("worker", "?"),
                t=float(data.get("t", 0.0)),
            )


_BASE = WindowsPath if os.name == "nt" else PosixPath


class AuditedPath(_BASE):
    """A path whose opens/unlinks are recorded against its workspace.

    Derived paths (``parent``, ``/``, ``glob`` results) stay audited:
    the owning root is recovered by prefix against the active-root
    registry, so no per-instance state needs to survive ``pathlib``'s
    internal reconstruction (or pickling into worker processes).
    """

    __slots__ = ()

    def _audit(self, op: str, nbytes: int | None = None) -> None:
        text = str(self)
        for root in _ACTIVE:
            if text.startswith(root + os.sep):
                record(root, text[len(root) + 1 :].replace(os.sep, "/"), op, nbytes=nbytes)
                return

    def _count_written(self, nbytes: int) -> None:
        """Metrics-only byte count for a write whose access event was
        already logged when :meth:`open` ran inside ``write_text``/
        ``write_bytes``."""
        text = str(self)
        for root in _ACTIVE:
            if text.startswith(root + os.sep):
                rel = text[len(root) + 1 :].replace(os.sep, "/")
                if not rel.startswith(AUDIT_DIR):
                    _metrics_io(rel, "write", nbytes, count_access=False)
                return

    def _read_size(self) -> int | None:
        try:
            return self.stat().st_size
        except OSError:
            return None

    def open(self, mode: str = "r", buffering: int = -1, encoding: str | None = None,
             errors: str | None = None, newline: str | None = None):
        # Read sizes are known up front (the pipeline reads files
        # whole); write sizes arrive via the write_text/write_bytes
        # hooks once the payload exists.
        if "+" in mode:
            self._audit("read", nbytes=self._read_size())
            self._audit("write")
        elif any(flag in mode for flag in "wax"):
            self._audit("write")
        else:
            self._audit("read", nbytes=self._read_size())
        return super().open(mode, buffering, encoding, errors, newline)

    def write_text(self, data: str, encoding: str | None = None,
                   errors: str | None = None, newline: str | None = None) -> int:
        written = super().write_text(data, encoding, errors, newline)
        self._count_written(written)
        return written

    def write_bytes(self, data) -> int:
        written = super().write_bytes(data)
        self._count_written(written)
        return written

    def unlink(self, missing_ok: bool = False) -> None:
        self._audit("delete")
        super().unlink(missing_ok)

    def rename(self, target):
        self._audit("delete")
        result = super().rename(target)
        renamed = AuditedPath(target)
        renamed._audit("write")
        return result
