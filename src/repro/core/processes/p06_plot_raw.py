"""P6 — plot first-generation corrected signals (redundant).

Present only in the Sequential Original implementation: it renders the
``<station>.ps`` accelerograph plots from the *default-corrected* V2
records, which P15 later overwrites with plots of the definitive
records.  The optimization analysis (paper §IV) removes it precisely
because nothing reads its output before the overwrite.
"""

from __future__ import annotations

from repro.core.artifacts import ACCGRAPH_META
from repro.core.auditing import process_unit
from repro.core.context import RunContext
from repro.formats.filelist import read_metadata
from repro.formats.v2 import read_v2
from repro.plotting.seismo import plot_accelerograph


@process_unit("P6")
def run_p06(ctx: RunContext) -> None:
    """Plot the (about-to-be-overwritten) default-corrected records."""
    from repro.resilience.runtime import surviving_entries

    meta = read_metadata(ctx.workspace.work(ACCGRAPH_META), process="P6")
    for entry in surviving_entries(ctx.workspace, meta.entries):
        station, *v2_names = entry
        records = {}
        for name in v2_names:
            rec = read_v2(ctx.workspace.work(name), process="P6")
            records[rec.header.component] = rec
        plot_accelerograph(ctx.workspace.plot_accelerograph(station), records)
