"""P16 — response spectrum calculation (Fortran in the original).

The pipeline's dominant cost: for every component file, the elastic
response spectra over the full oscillator grid (the paper quotes a
sequential complexity of O(9000 * N * D^2) for its Duhamel-style
formulation — §VI-B).  Stage IX of the fully-parallel implementation
maps :func:`response_for_trace` over all 3N component files, the
paper's Fortran ``omp do``; it is both the longest stage and the one
with the highest speedup (5.14x, Fig. 11).
"""

from __future__ import annotations

from repro.core.artifacts import RESPONSE_META, Workspace
from repro.core.auditing import process_unit
from repro.core.context import RunContext
from repro.formats.filelist import read_metadata
from repro.formats.response import ResponseRecord, write_response
from repro.formats.v2 import read_v2
from repro.spectra.response import ResponseSpectrumConfig, response_spectrum


@process_unit("P16", unit_arg=2)
def response_for_trace(
    workspace_root: str, v2_name: str, r_name: str, config: ResponseSpectrumConfig
) -> str:
    """Unit of P16's loop: response spectra for one component file."""
    workspace = Workspace(workspace_root)
    record = read_v2(workspace.work(v2_name), process="P16")
    spectrum = response_spectrum(record.acceleration, record.header.dt, config)
    out = ResponseRecord(
        header=record.header.copy_for(),
        periods=spectrum.periods,
        dampings=spectrum.dampings,
        sa=spectrum.sa,
        sv=spectrum.sv,
        sd=spectrum.sd,
    )
    write_response(workspace.work(r_name), out)
    return r_name


def trace_pairs(ctx: RunContext) -> list[tuple[str, str]]:
    """(v2 name, r name) for every component file, from response.meta."""
    from repro.resilience.runtime import surviving_entries

    meta = read_metadata(ctx.workspace.work(RESPONSE_META), process="P16")
    pairs: list[tuple[str, str]] = []
    for entry in surviving_entries(ctx.workspace, meta.entries):
        _station, *names = entry
        v2_names, r_names = names[:3], names[3:]
        pairs.extend(zip(v2_names, r_names))
    return pairs


@process_unit("P16")
def run_p16(ctx: RunContext) -> None:
    """Compute response spectra for every trace, sequentially."""
    root = str(ctx.workspace.root)
    for v2_name, r_name in trace_pairs(ctx):
        response_for_trace(root, v2_name, r_name, ctx.response_config)
