"""P19 — generate the GEM files (C++ in the original).

Explodes every (station, component) pair's V2 and R files into six
single-series GEM inputs — 18 files per station.  The paper's
``SetDataApart`` runs over the interleaved V2/R file list with a
``#pragma omp parallel for`` (stage X, parallel in both parallel
implementations, §V-C).

The GEM time-series files carry the corrected A/V/D traces against
time; the GEM spectrum files carry SA/SV/SD at 5% damping against
period.
"""

from __future__ import annotations

import numpy as np

from repro.core.artifacts import RESPONSE_META, Workspace
from repro.core.auditing import process_unit
from repro.core.context import RunContext
from repro.formats.filelist import read_metadata
from repro.formats.gem import GemSeries, write_gem
from repro.formats.response import read_response
from repro.formats.v2 import read_v2

#: GEM reference damping ratio (fraction of critical).
GEM_DAMPING: float = 0.05


@process_unit("P19", unit_arg=1)
def set_data_apart(workspace_root: str, file_name: str, is_response: bool) -> list[str]:
    """Unit of P19's loop: split one V2 or R file into three GEM series.

    Mirrors the legacy ``SetDataApart(files[i], isR)``: the flag says
    whether the file is a response spectrum (odd slots of the
    interleaved list) or a corrected record (even slots).
    """
    workspace = Workspace(workspace_root)
    written: list[str] = []
    if is_response:
        record = read_response(workspace.work(file_name), process="P19")
        d_idx = int(np.argmin(np.abs(record.dampings - GEM_DAMPING)))
        station, comp = record.header.station, record.header.component
        for quantity, values in (
            ("A", record.sa[d_idx]),
            ("V", record.sv[d_idx]),
            ("D", record.sd[d_idx]),
        ):
            series = GemSeries(
                station=station,
                component=comp,
                source="R",
                quantity=quantity,
                abscissa=record.periods,
                values=values,
            )
            path = workspace.gem(station, comp, "R", quantity)
            write_gem(path, series)
            written.append(path.name)
    else:
        record = read_v2(workspace.work(file_name), process="P19")
        station, comp = record.header.station, record.header.component
        t = np.arange(record.header.npts) * record.header.dt
        for quantity, values in (
            ("A", record.acceleration),
            ("V", record.velocity),
            ("D", record.displacement),
        ):
            series = GemSeries(
                station=station,
                component=comp,
                source="2",
                quantity=quantity,
                abscissa=t,
                values=values,
            )
            path = workspace.gem(station, comp, "2", quantity)
            write_gem(path, series)
            written.append(path.name)
    return written


def interleaved_files(ctx: RunContext) -> list[tuple[str, bool]]:
    """The legacy interleaved work list: (file name, isR) pairs.

    Even slots are V2 files, odd slots are R files, exactly like the
    ``files[i*2] / files[i*2+1]`` layout in the paper's listing.
    """
    from repro.resilience.runtime import surviving_entries

    meta = read_metadata(ctx.workspace.work(RESPONSE_META), process="P19")
    out: list[tuple[str, bool]] = []
    for entry in surviving_entries(ctx.workspace, meta.entries):
        _station, *names = entry
        v2_names, r_names = names[:3], names[3:]
        for v2_name, r_name in zip(v2_names, r_names):
            out.append((v2_name, False))
            out.append((r_name, True))
    return out


@process_unit("P19")
def run_p19(ctx: RunContext) -> None:
    """Generate all GEM files, sequentially."""
    root = str(ctx.workspace.root)
    for file_name, is_response in interleaved_files(ctx):
        set_data_apart(root, file_name, is_response)
