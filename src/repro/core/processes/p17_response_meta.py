"""P17 — initialize the response plotting metadata (Fortran).

Writes ``responsegraph.meta``: per station, the three R files the
response-spectrum plot (P18) visits.
"""

from __future__ import annotations

from repro.core.artifacts import RESPONSEGRAPH_META
from repro.core.auditing import process_unit
from repro.core.context import RunContext
from repro.core.processes.p03_separate import stations_from_list
from repro.formats.common import COMPONENTS
from repro.formats.filelist import MetadataFile, write_metadata
from repro.formats.response import component_r_name


def build_responsegraph_meta(stations: list[str]) -> MetadataFile:
    """Entries: (station, r_l, r_t, r_v)."""
    return MetadataFile(
        purpose="RESPONSEGRAPH",
        entries=[(s, *(component_r_name(s, c) for c in COMPONENTS)) for s in stations],
    )


@process_unit("P17")
def run_p17(ctx: RunContext) -> None:
    """Write ``responsegraph.meta``."""
    stations = stations_from_list(ctx.workspace)
    write_metadata(
        ctx.workspace.work(RESPONSEGRAPH_META), build_responsegraph_meta(stations)
    )
