"""P14 — initialize metadata files again (redundant).

Present only in the Sequential Original implementation: rewrites the
three metadata files with content identical to P5's, since the station
list did not change (paper §IV, point 3).
"""

from __future__ import annotations

from repro.core.auditing import process_unit
from repro.core.context import RunContext
from repro.core.processes.p05_metadata import write_p05_outputs


@process_unit("P14")
def run_p14(ctx: RunContext) -> None:
    """Rewrite the metadata files (identical output to P5)."""
    write_p05_outputs(ctx.workspace)
