"""P2 — initialize default filter parameters (Fortran in the original).

Writes ``filter.par`` holding the default band-pass corners used by
the first correction pass (P4), before any record-specific FPL/FSL is
known.
"""

from __future__ import annotations

from repro.core.artifacts import FILTER_PARAMS
from repro.core.auditing import process_unit
from repro.core.context import RunContext
from repro.formats.params import FilterParams, write_filter_params


@process_unit("P2")
def run_p02(ctx: RunContext) -> None:
    """Write the default ``filter.par``."""
    write_filter_params(
        ctx.workspace.work(FILTER_PARAMS), FilterParams(default=ctx.default_filter)
    )
