"""P7 — apply the Fourier transformation (Fortran in the original).

Runs the legacy Fourier tool over the corrected V2 records, producing
the ``<station><comp>.f`` spectra files.  Like P4/P13, the original
program is un-modifiable, so the fully-parallel implementation runs
concurrent tool instances in temporary folders (stage V).
"""

from __future__ import annotations

from repro.core.artifacts import FOURIER_META
from repro.core.auditing import process_unit
from repro.core.context import RunContext
from repro.core.processes.common import require
from repro.core.tools import TOOL_CONFIG, fourier_tool, write_tool_config


@process_unit("P7")
def run_p07(ctx: RunContext) -> None:
    """Fourier-transform every corrected component, sequentially."""
    from repro.resilience.runtime import active_runtime

    work = ctx.workspace.work_dir
    runtime = active_runtime(ctx.workspace.root)
    require(ctx.workspace.work(FOURIER_META), "P7")
    write_tool_config(
        work, taper=ctx.taper_fraction, maxperiod=ctx.fourier_max_period, process="P7"
    )
    if runtime is not None:
        runtime.apply_config_faults(work, "P7")
    try:
        fourier_tool(work)
    finally:
        if runtime is not None:
            reports = runtime.drain_pending()
            if reports:
                runtime.quarantine_reports(reports, tracer=ctx.tracer)
        (work / TOOL_CONFIG).unlink(missing_ok=True)
