"""P11 — second flag initialization (C++ in the original).

Re-initializes the driver flags for the definitive-correction half of
the run (``flags2.dat``).  Runs in under two milliseconds, which is
why the paper leaves stage VII sequential even in the fully-parallel
implementation (§VI).
"""

from __future__ import annotations

from repro.core.artifacts import FLAGS2
from repro.core.auditing import process_unit
from repro.core.context import RunContext
from repro.core.processes.p00_flags import flags_content


@process_unit("P11")
def run_p11(ctx: RunContext) -> None:
    """Write ``flags2.dat``."""
    ctx.workspace.work(FLAGS2).write_text(flags_content())
