"""P4 — apply the default band-pass correction (Fortran in the original).

Runs the legacy correction tool (:mod:`repro.core.tools`) over the
per-component V1 files, producing first-generation V2 records and the
``maxvals.dat`` maxima archive.  The original program is un-modifiable,
so the fully-parallel implementation executes *instances* of the tool
concurrently inside temporary folders (stage IV) rather than threading
its interior; the sequential form simply points the tool at the work
directory.
"""

from __future__ import annotations

from repro.core.artifacts import FILTER_PARAMS, MAXVALS
from repro.core.auditing import process_unit
from repro.core.context import RunContext
from repro.core.processes.common import merge_max_files, require
from repro.core.tools import TOOL_CONFIG, correction_tool, write_tool_config


def run_correction_sequential(
    ctx: RunContext, params_name: str, maxvals_name: str, process: str = "P4"
) -> None:
    """Shared body of P4 and P13: run the tool in-place, merge maxima."""
    from repro.resilience.runtime import active_runtime

    work = ctx.workspace.work_dir
    runtime = active_runtime(ctx.workspace.root)
    require(ctx.workspace.work(params_name), "P4/P13")
    write_tool_config(work, params=params_name, process=process)
    if runtime is not None:
        # Config faults hit the very tool.cfg just staged — fatal to
        # the event in this mode exactly as in the temp-folder mode.
        runtime.apply_config_faults(work, process)
    try:
        correction_tool(work)
    finally:
        if runtime is not None:
            reports = runtime.drain_pending()
            if reports:
                # Purge before the merge so the maxvals archive only
                # aggregates maxima of surviving stations.
                runtime.quarantine_reports(reports, tracer=ctx.tracer)
        (work / TOOL_CONFIG).unlink(missing_ok=True)
    merge_max_files(work, maxvals_name)


@process_unit("P4")
def run_p04(ctx: RunContext) -> None:
    """Default-corner correction pass over all component files."""
    run_correction_sequential(ctx, FILTER_PARAMS, MAXVALS)
