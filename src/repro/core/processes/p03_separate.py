"""P3 — separate raw records by component (Fortran in the original).

Reads every ``<station>.v1`` named in ``v1files.lst`` and writes the
three per-component ``<station><comp>.v1`` files the correction stages
consume.  The fully-parallel implementation maps
:func:`separate_station` over stations (the paper's Fortran
``omp do`` — §VI-A).
"""

from __future__ import annotations

from repro.core.artifacts import V1_LIST, Workspace
from repro.core.auditing import process_unit
from repro.core.context import RunContext
from repro.formats.common import COMPONENTS
from repro.formats.filelist import read_filelist
from repro.formats.v1 import read_v1, write_component_v1


def stations_from_list(workspace: Workspace) -> list[str]:
    """Station codes from ``v1files.lst`` (strips the .v1 suffix).

    Every stage's work list comes from here, so filtering quarantined
    stations at this one point keeps the whole plan — sequential or
    staged — operating on the survivors.
    """
    from repro.resilience.runtime import surviving_stations

    names = read_filelist(workspace.work(V1_LIST), process="P3")
    return surviving_stations(workspace, [name[: -len(".v1")] for name in names])


@process_unit("P3", unit_arg=1)
def separate_station(workspace_root: str, station: str, process: str = "P3") -> str:
    """Unit of P3's loop: split one raw record into component files.

    ``process`` labels the fault-injection point: P12's redundant
    re-separation runs the same code but is its own execution point, so
    a fault targeting ``P3:<station>`` must not fire again there (it
    would skew retry counts on the one implementation that runs P12).
    """
    from repro.resilience.runtime import runtime_for

    workspace = Workspace(workspace_root)
    runtime = runtime_for(workspace.root)
    if runtime is not None:
        # The injected worker-crash point: inside the loop unit, so the
        # serial retry wrapper and the pool isolation see the same fault.
        runtime.check_crash(process, station)
    record = read_v1(workspace.raw_v1(station), process="P3")
    for comp in COMPONENTS:
        write_component_v1(workspace.component_v1(station, comp), record.component_record(comp))
    return station


@process_unit("P3")
def run_p03(ctx: RunContext, process: str = "P3") -> None:
    """Separate every station's record, sequentially."""
    from repro.resilience.runtime import active_runtime

    runtime = active_runtime(ctx.workspace.root)
    if runtime is None:
        for station in stations_from_list(ctx.workspace):
            separate_station(str(ctx.workspace.root), station, process)
        return
    reports = []
    for station in stations_from_list(ctx.workspace):
        report = runtime.run_unit(
            process,
            station,
            lambda s=station: separate_station(str(ctx.workspace.root), s, process),
        )
        if report is not None:
            reports.append(report)
    if reports:
        runtime.quarantine_reports(reports, tracer=ctx.tracer)
