"""P3 — separate raw records by component (Fortran in the original).

Reads every ``<station>.v1`` named in ``v1files.lst`` and writes the
three per-component ``<station><comp>.v1`` files the correction stages
consume.  The fully-parallel implementation maps
:func:`separate_station` over stations (the paper's Fortran
``omp do`` — §VI-A).
"""

from __future__ import annotations

from repro.core.artifacts import V1_LIST, Workspace
from repro.core.auditing import process_unit
from repro.core.context import RunContext
from repro.formats.common import COMPONENTS
from repro.formats.filelist import read_filelist
from repro.formats.v1 import read_v1, write_component_v1


def stations_from_list(workspace: Workspace) -> list[str]:
    """Station codes from ``v1files.lst`` (strips the .v1 suffix)."""
    names = read_filelist(workspace.work(V1_LIST), process="P3")
    return [name[: -len(".v1")] for name in names]


@process_unit("P3", unit_arg=1)
def separate_station(workspace_root: str, station: str) -> str:
    """Unit of P3's loop: split one raw record into component files."""
    workspace = Workspace(workspace_root)
    record = read_v1(workspace.raw_v1(station), process="P3")
    for comp in COMPONENTS:
        write_component_v1(workspace.component_v1(station, comp), record.component_record(comp))
    return station


@process_unit("P3")
def run_p03(ctx: RunContext) -> None:
    """Separate every station's record, sequentially."""
    for station in stations_from_list(ctx.workspace):
        separate_station(str(ctx.workspace.root), station)
