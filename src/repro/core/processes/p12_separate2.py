"""P12 — separate raw records again (redundant).

Present only in the Sequential Original implementation: it re-splits
every raw V1 record into component files, reproducing P3's output
byte-for-byte because nothing modified the V1 files in between — the
redundancy the optimization analysis removes (paper §IV, point 2).
"""

from __future__ import annotations

from repro.core.auditing import process_unit
from repro.core.context import RunContext
from repro.core.processes.p03_separate import run_p03


@process_unit("P12")
def run_p12(ctx: RunContext) -> None:
    """Re-run the component separation (identical output to P3)."""
    run_p03(ctx, process="P12")
