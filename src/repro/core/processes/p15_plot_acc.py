"""P15 — plot the definitive accelerographs (Fortran in the original).

Renders one ``<station>.ps`` plot per station (three stacked A/V/D
panels, the paper's Fig. 2 layout) from the definitive V2 records.
Overwrites whatever P6 produced in the original implementation.
Parallelized as a whole task in stage XI.
"""

from __future__ import annotations

from repro.core.artifacts import ACCGRAPH_META
from repro.core.auditing import process_unit
from repro.core.context import RunContext
from repro.formats.filelist import read_metadata
from repro.formats.v2 import read_v2
from repro.plotting.seismo import plot_accelerograph


@process_unit("P15")
def run_p15(ctx: RunContext) -> None:
    """Plot every station's definitive corrected motion."""
    from repro.resilience.runtime import surviving_entries

    meta = read_metadata(ctx.workspace.work(ACCGRAPH_META), process="P15")
    for entry in surviving_entries(ctx.workspace, meta.entries):
        station, *v2_names = entry
        records = {}
        for name in v2_names:
            rec = read_v2(ctx.workspace.work(name), process="P15")
            records[rec.header.component] = rec
        plot_accelerograph(ctx.workspace.plot_accelerograph(station), records)
