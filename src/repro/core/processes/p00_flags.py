"""P0 — initialize run flags (C++ in the original).

Writes the ten run-control flags the legacy driver keeps in
``flags.dat``.  All flags are fixed for a standard run; they exist
because the original program gated optional behaviour (replotting,
verbose logs) on them.
"""

from __future__ import annotations

from repro.core.artifacts import FLAGS
from repro.core.auditing import process_unit
from repro.core.context import RunContext

#: The ten flag names of the legacy driver.
FLAG_NAMES: tuple[str, ...] = (
    "PROCESS_ALL_COMPONENTS",
    "WRITE_MAX_VALUES",
    "PLOT_UNCORRECTED",
    "PLOT_FOURIER",
    "PLOT_RESPONSE",
    "KEEP_INTERMEDIATE",
    "VERBOSE_LOG",
    "STRICT_HEADERS",
    "EXPORT_GEM",
    "OVERWRITE_OUTPUTS",
)


def flags_content() -> str:
    """The canonical flags file body (all flags enabled)."""
    return "\n".join(f"{name} 1" for name in FLAG_NAMES) + "\n"


@process_unit("P0")
def run_p00(ctx: RunContext) -> None:
    """Write ``flags.dat``."""
    ctx.workspace.work(FLAGS).write_text(flags_content())
