"""P10 — obtain the FSL & FPL filter corners (C++ in the original).

For every component of every station, searches the velocity Fourier
spectrum for its long-period inflection point (Fig. 3 of the paper)
and derives the definitive band-pass corners.  The paper parallelizes
the *inner* three-component loop (stage VI, §V-B) — the outer station
loop stays sequential in both parallel implementations.

Writes ``filter_corrected.par`` with one override per trace.
"""

from __future__ import annotations

from functools import partial

from repro.core.artifacts import (
    FILTER_CORRECTED,
    FILTER_PARAMS,
    FOURIERGRAPH_META,
    Workspace,
)
from repro.core.auditing import process_unit
from repro.core.context import InflectionSettings, RunContext
from repro.dsp.fir import BandPassSpec
from repro.formats.filelist import read_metadata
from repro.formats.fourier import read_fourier
from repro.formats.params import FilterParams, read_filter_params, write_filter_params
from repro.parallel.omp import parallel_for
from repro.spectra.inflection import corners_from_inflection, find_inflection_point


@process_unit("P10", unit_arg=1)
def analyze_component(
    workspace_root: str,
    f_name: str,
    base: BandPassSpec,
    settings: InflectionSettings,
) -> tuple[str, str, BandPassSpec]:
    """Unit of the inner loop: corners for one component's spectrum."""
    workspace = Workspace(workspace_root)
    record = read_fourier(workspace.work(f_name), process="P10")
    result = find_inflection_point(
        record.periods,
        record.velocity,
        min_period=settings.min_period,
        smoothing_half_width=settings.smoothing_half_width,
        persistence=settings.persistence,
        fsl_ratio=settings.fsl_ratio,
        fallback_period=settings.fallback_period,
    )
    spec = corners_from_inflection(result, base)
    return record.header.station, record.header.component, spec


@process_unit("P10")
def run_p10(ctx: RunContext, *, parallel_inner: bool = False) -> None:
    """Search every trace's inflection; write ``filter_corrected.par``.

    ``parallel_inner=True`` runs the three components of each station
    concurrently (the paper's ``#pragma omp parallel for`` over
    ``j = 0..2``); results are collected in component order so the
    output file is identical either way.
    """
    from repro.resilience.runtime import surviving_entries

    meta = read_metadata(ctx.workspace.work(FOURIERGRAPH_META), process="P10")
    # The base corners come from P2's filter.par — the dependency the
    # registry declares — not from the in-memory context, so every
    # implementation derives corners from the same on-disk state.
    base = read_filter_params(ctx.workspace.work(FILTER_PARAMS), process="P10").default
    params = FilterParams(default=base)
    root = str(ctx.workspace.root)
    for entry in surviving_entries(ctx.workspace, meta.entries):
        _station, *f_names = entry
        if parallel_inner:
            # functools.partial keeps the body picklable for the
            # process backend (a lambda would not be).
            body = partial(
                analyze_component,
                root,
                base=base,
                settings=ctx.inflection,
            )
            results = parallel_for(
                body,
                f_names,
                backend=ctx.parallel.loop_backend,
                num_workers=min(ctx.parallel.workers, len(f_names)),
                tracer=ctx.tracer,
                span="analyze_component",
                metrics=ctx.metrics,
            )
        else:
            results = [
                analyze_component(root, name, base, ctx.inflection)
                for name in f_names
            ]
        for station, comp, spec in results:
            params.set_override(station, comp, spec)
    write_filter_params(ctx.workspace.work(FILTER_CORRECTED), params)
