"""Helpers shared by several pipeline processes."""

from __future__ import annotations

from pathlib import Path

from repro.core.artifacts import Workspace
from repro.errors import MissingArtifactError


def merge_max_files(work_dir: Path, out_name: str) -> None:
    """Merge per-trace ``*.max`` lines into one maxima file, then
    delete the parts.

    Parts are concatenated in sorted name order so the merged file is
    byte-identical no matter which worker produced which part — the
    mechanism that keeps parallel and sequential maxvals files equal.
    """
    parts = sorted(work_dir.glob("*.max"))
    if not parts:
        return
    lines = [p.read_text().rstrip("\n") for p in parts]
    (work_dir / out_name).write_text("\n".join(lines) + "\n")
    for p in parts:
        p.unlink()


def require(path: Path, process: str) -> Path:
    """Assert an input artifact exists before a process consumes it."""
    if not path.exists():
        raise MissingArtifactError(str(path), process)
    return path


def station_component_pairs(stations: list[str]) -> list[tuple[str, str]]:
    """All (station, component) pairs in canonical order."""
    from repro.formats.common import COMPONENTS

    return [(station, comp) for station in stations for comp in COMPONENTS]


def workspace_of(root: str | Path) -> Workspace:
    """Rebuild a Workspace from its root path (for worker processes)."""
    return Workspace(root)
