"""P1 — gather input data files (C++ in the original).

Scans the workspace's ``input/`` directory for raw ``<station>.v1``
records and writes the canonical, sorted work list ``v1files.lst``.
Every later process learns its work from this list (or from metadata
derived from it), never by globbing — matching the legacy design.
"""

from __future__ import annotations

from repro.core.artifacts import V1_LIST
from repro.core.auditing import process_unit
from repro.core.context import RunContext
from repro.errors import PipelineError
from repro.formats.filelist import write_filelist


@process_unit("P1")
def run_p01(ctx: RunContext) -> None:
    """Write ``v1files.lst`` from the input directory."""
    ctx.workspace.require_input()
    names = sorted(p.name for p in ctx.workspace.input_dir.glob("*.v1"))
    if not names:
        raise PipelineError(f"no .v1 files under {ctx.workspace.input_dir}")
    write_filelist(ctx.workspace.work(V1_LIST), names)
