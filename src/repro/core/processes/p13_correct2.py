"""P13 — obtain the definitive corrected signals (Fortran in the original).

Identical machinery to P4 but driven by ``filter_corrected.par`` — the
record-specific FPL/FSL corners P10 recovered from the velocity
Fourier spectra.  Overwrites the V2 files with the definitive
correction and archives the new maxima in ``maxvals2.dat``.  Stage
VIII of the fully-parallel implementation runs concurrent tool
instances in temp folders, exactly like stage IV.
"""

from __future__ import annotations

from repro.core.artifacts import FILTER_CORRECTED, MAXVALS2
from repro.core.auditing import process_unit
from repro.core.context import RunContext
from repro.core.processes.p04_correct import run_correction_sequential


@process_unit("P13")
def run_p13(ctx: RunContext) -> None:
    """Definitive correction pass over all component files."""
    run_correction_sequential(ctx, FILTER_CORRECTED, MAXVALS2, process="P13")
