"""P18 — plot the response spectra (Fortran in the original).

Renders one ``<station>r.ps`` log-log plot per station (the paper's
Fig. 4 layout) from the R files.  Parallelized as a whole task in
stage XI.
"""

from __future__ import annotations

from repro.core.artifacts import RESPONSEGRAPH_META
from repro.core.auditing import process_unit
from repro.core.context import RunContext
from repro.formats.filelist import read_metadata
from repro.formats.response import read_response
from repro.plotting.seismo import plot_response_spectrum


@process_unit("P18")
def run_p18(ctx: RunContext) -> None:
    """Plot every station's response spectra."""
    from repro.resilience.runtime import surviving_entries

    meta = read_metadata(ctx.workspace.work(RESPONSEGRAPH_META), process="P18")
    for entry in surviving_entries(ctx.workspace, meta.entries):
        station, *r_names = entry
        records = {}
        for name in r_names:
            rec = read_response(ctx.workspace.work(name), process="P18")
            records[rec.header.component] = rec
        plot_response_spectrum(ctx.workspace.plot_response(station), records)
