"""P8 — initialize the Fourier plotting metadata (Fortran in the original).

Writes ``fouriergraph.meta``: per station, the three F files the
Fourier-spectrum plot (P9) and the FPL/FSL search (P10) visit.
"""

from __future__ import annotations

from repro.core.artifacts import FOURIERGRAPH_META
from repro.core.auditing import process_unit
from repro.core.context import RunContext
from repro.core.processes.p03_separate import stations_from_list
from repro.formats.common import COMPONENTS
from repro.formats.filelist import MetadataFile, write_metadata
from repro.formats.fourier import component_f_name


def build_fouriergraph_meta(stations: list[str]) -> MetadataFile:
    """Entries: (station, f_l, f_t, f_v)."""
    return MetadataFile(
        purpose="FOURIERGRAPH",
        entries=[(s, *(component_f_name(s, c) for c in COMPONENTS)) for s in stations],
    )


@process_unit("P8")
def run_p08(ctx: RunContext) -> None:
    """Write ``fouriergraph.meta``."""
    stations = stations_from_list(ctx.workspace)
    write_metadata(ctx.workspace.work(FOURIERGRAPH_META), build_fouriergraph_meta(stations))
