"""P5 — initialize plotting/processing metadata (Fortran in the original).

Derives three metadata files from ``v1files.lst``:

- ``accgraph.meta``  — per station, the V2 files the accelerograph
  plot (P6/P15) reads;
- ``fourier.meta``   — per station, V2 inputs and F outputs of the
  Fourier transform (P7);
- ``response.meta``  — per station, V2 inputs and R outputs of the
  response-spectrum calculation (P16).
"""

from __future__ import annotations

from repro.core.artifacts import ACCGRAPH_META, FOURIER_META, RESPONSE_META, Workspace
from repro.core.auditing import process_unit
from repro.core.context import RunContext
from repro.core.processes.p03_separate import stations_from_list
from repro.formats.common import COMPONENTS
from repro.formats.filelist import MetadataFile, write_metadata
from repro.formats.fourier import component_f_name
from repro.formats.response import component_r_name
from repro.formats.v2 import component_v2_name


def build_accgraph_meta(stations: list[str]) -> MetadataFile:
    """Entries: (station, v2_l, v2_t, v2_v)."""
    return MetadataFile(
        purpose="ACCGRAPH",
        entries=[
            (s, *(component_v2_name(s, c) for c in COMPONENTS)) for s in stations
        ],
    )


def build_fourier_meta(stations: list[str]) -> MetadataFile:
    """Entries: (station, v2 x3, f x3)."""
    return MetadataFile(
        purpose="FOURIER",
        entries=[
            (
                s,
                *(component_v2_name(s, c) for c in COMPONENTS),
                *(component_f_name(s, c) for c in COMPONENTS),
            )
            for s in stations
        ],
    )


def build_response_meta(stations: list[str]) -> MetadataFile:
    """Entries: (station, v2 x3, r x3)."""
    return MetadataFile(
        purpose="RESPONSE",
        entries=[
            (
                s,
                *(component_v2_name(s, c) for c in COMPONENTS),
                *(component_r_name(s, c) for c in COMPONENTS),
            )
            for s in stations
        ],
    )


def write_p05_outputs(workspace: Workspace) -> None:
    """Write the three metadata files (shared with P14)."""
    stations = stations_from_list(workspace)
    write_metadata(workspace.work(ACCGRAPH_META), build_accgraph_meta(stations))
    write_metadata(workspace.work(FOURIER_META), build_fourier_meta(stations))
    write_metadata(workspace.work(RESPONSE_META), build_response_meta(stations))


@process_unit("P5")
def run_p05(ctx: RunContext) -> None:
    """Write accgraph/fourier/response metadata."""
    write_p05_outputs(ctx.workspace)
