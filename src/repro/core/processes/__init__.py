"""The 20 numbered processes of the legacy pipeline (P0–P19).

Every process is a function of a :class:`~repro.core.context.RunContext`
that communicates exclusively through workspace files (see
:mod:`repro.core.artifacts`).  Each module also exports the *unit*
functions the parallel implementations map over (top-level and
picklable, so the process backend can run them).

Process index:

====  ==========================================  =================
P     module                                      role
====  ==========================================  =================
P0    :mod:`repro.core.processes.p00_flags`       initialize flags
P1    :mod:`repro.core.processes.p01_gather`      gather input files
P2    :mod:`repro.core.processes.p02_params`      default filter params
P3    :mod:`repro.core.processes.p03_separate`    split V1 by component
P4    :mod:`repro.core.processes.p04_correct`     default correction
P5    :mod:`repro.core.processes.p05_metadata`    plotting metadata
P6    :mod:`repro.core.processes.p06_plot_raw`    plot (redundant)
P7    :mod:`repro.core.processes.p07_fourier`     Fourier spectra
P8    :mod:`repro.core.processes.p08_fourier_meta` Fourier plot metadata
P9    :mod:`repro.core.processes.p09_plot_fourier` plot Fourier spectra
P10   :mod:`repro.core.processes.p10_corners`     FPL/FSL search
P11   :mod:`repro.core.processes.p11_flags2`      second flag init
P12   :mod:`repro.core.processes.p12_separate2`   split again (redundant)
P13   :mod:`repro.core.processes.p13_correct2`    definitive correction
P14   :mod:`repro.core.processes.p14_metadata2`   metadata again (redundant)
P15   :mod:`repro.core.processes.p15_plot_acc`    plot accelerographs
P16   :mod:`repro.core.processes.p16_response`    response spectra
P17   :mod:`repro.core.processes.p17_response_meta` response plot metadata
P18   :mod:`repro.core.processes.p18_plot_response` plot response spectra
P19   :mod:`repro.core.processes.p19_gem`         generate GEM files
====  ==========================================  =================
"""
