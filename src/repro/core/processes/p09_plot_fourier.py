"""P9 — plot the Fourier spectra (Fortran in the original).

Renders one ``<station>f.ps`` log-log plot per station from the F
files, driven by ``fouriergraph.meta``.  Parallelized as a whole task
(stage XI) in both parallel implementations.
"""

from __future__ import annotations

from repro.core.artifacts import FOURIERGRAPH_META
from repro.core.auditing import process_unit
from repro.core.context import RunContext
from repro.formats.filelist import read_metadata
from repro.formats.fourier import read_fourier
from repro.plotting.seismo import plot_fourier_spectrum


@process_unit("P9")
def run_p09(ctx: RunContext) -> None:
    """Plot every station's Fourier spectra."""
    from repro.resilience.runtime import surviving_entries

    meta = read_metadata(ctx.workspace.work(FOURIERGRAPH_META), process="P9")
    for entry in surviving_entries(ctx.workspace, meta.entries):
        station, *f_names = entry
        records = {}
        for name in f_names:
            rec = read_fourier(ctx.workspace.work(name), process="P9")
            records[rec.header.component] = rec
        plot_fourier_spectrum(ctx.workspace.plot_fourier(station), records)
