"""Emulations of the legacy Fortran programs.

The paper could not modify two of the original programs, so its full
parallelization runs *multiple instances concurrently within temporary
folders* (§VI).  To make that strategy meaningful here, the same
programs are reimplemented with the same shape: a tool is a function of
a single directory — it discovers its inputs by extension inside that
directory, reads its numeric settings from a ``tool.cfg`` file, and
writes its outputs next to them.  No Python-level arguments carry data;
everything goes through files, exactly like running the binary with a
working directory.

Tools provided:

- :func:`correction_tool` — the band-pass correction program behind
  P4 and P13 (they differ only in which parameter file is staged);
- :func:`fourier_tool` — the Fourier-spectrum program behind P7.
"""

from __future__ import annotations

from pathlib import Path

from repro.dsp.detrend import baseline_correct
from repro.dsp.fir import BandPassSpec, design_bandpass, fir_filter
from repro.dsp.integrate import acceleration_to_motion
from repro.dsp.peak import peak_ground_motion
from repro.errors import PipelineError
from repro.formats.params import read_filter_params
from repro.formats.fourier import FourierRecord, write_fourier
from repro.formats.v1 import ComponentRecord, read_component_v1
from repro.formats.v2 import CorrectedRecord, read_v2, write_v2
from repro.spectra.fourier import motion_fourier_spectra

TOOL_CONFIG = "tool.cfg"


def write_tool_config(folder: Path | str, **settings: object) -> None:
    """Write the tool.cfg settings file the legacy tools read."""
    lines = [f"{key.upper()} {value}" for key, value in sorted(settings.items())]
    (Path(folder) / TOOL_CONFIG).write_text("\n".join(lines) + "\n")


def read_tool_config(folder: Path | str) -> dict[str, str]:
    """Read tool.cfg; missing file means an empty setting map."""
    path = Path(folder) / TOOL_CONFIG
    if not path.exists():
        return {}
    settings: dict[str, str] = {}
    for line in path.read_text().splitlines():
        tokens = line.split(maxsplit=1)
        if len(tokens) == 2:
            settings[tokens[0].upper()] = tokens[1]
    return settings


def correct_component(record: ComponentRecord, spec: BandPassSpec) -> CorrectedRecord:
    """The correction computation shared by P4 and P13.

    Baseline-correct the raw acceleration, apply the Hamming band-pass,
    integrate to velocity and displacement, and extract the peaks.
    """
    dt = record.header.dt
    corrected = baseline_correct(record.acceleration)
    taps = design_bandpass(spec, dt)
    corrected = fir_filter(corrected, taps)
    acc, vel, disp = acceleration_to_motion(corrected, dt)
    peaks = peak_ground_motion(acc, vel, disp, dt)
    return CorrectedRecord(
        header=record.header.copy_for(),
        acceleration=acc,
        velocity=vel,
        displacement=disp,
        peaks=peaks,
        f_stop_low=spec.f_stop_low,
        f_pass_low=spec.f_pass_low,
        f_pass_high=spec.f_pass_high,
        f_stop_high=spec.f_stop_high,
    )


def max_line(record: CorrectedRecord) -> str:
    """The fixed-format maxima line archived in the maxvals files."""
    p = record.peaks
    return (
        f"{record.header.station} {record.header.component} "
        f"{p.pga:15.7E} {p.pga_time:10.4f} "
        f"{p.pgv:15.7E} {p.pgv_time:10.4f} "
        f"{p.pgd:15.7E} {p.pgd_time:10.4f}"
    )


def correction_tool(folder: Path | str) -> list[str]:
    """The legacy correction program.

    Contract: the folder contains a filter-parameter file (named by the
    ``PARAMS`` key of tool.cfg, default ``filter.par``) and any number
    of single-component ``*.v1`` files.  For each, a ``*.v2`` corrected
    record and a ``*.max`` maxima line are written beside it.  Returns
    the processed trace names (sorted), mirroring the binary's log.
    """
    folder = Path(folder)
    settings = read_tool_config(folder)
    params_name = settings.get("PARAMS", "filter.par")
    params_path = folder / params_name
    if not params_path.exists():
        raise PipelineError(f"correction tool: no parameter file {params_path}")
    params = read_filter_params(params_path)
    processed: list[str] = []
    for v1_path in sorted(folder.glob("*.v1")):
        record = read_component_v1(v1_path)
        station, comp = record.header.station, record.header.component
        spec = params.spec_for(station, comp)
        corrected = correct_component(record, spec)
        stem = v1_path.stem
        write_v2(folder / f"{stem}.v2", corrected)
        (folder / f"{stem}.max").write_text(max_line(corrected) + "\n")
        processed.append(stem)
    return processed


def fourier_tool(folder: Path | str) -> list[str]:
    """The legacy Fourier-spectrum program.

    Contract: the folder contains ``*.v2`` corrected records; for each,
    a ``*.f`` Fourier-spectra file is written.  tool.cfg keys ``TAPER``
    and ``MAXPERIOD`` set the taper fraction and period band.
    """
    folder = Path(folder)
    settings = read_tool_config(folder)
    taper = float(settings.get("TAPER", "0.05"))
    max_period = float(settings.get("MAXPERIOD", "20.0"))
    processed: list[str] = []
    for v2_path in sorted(folder.glob("*.v2")):
        record = read_v2(v2_path)
        periods, fa, fv, fd = motion_fourier_spectra(
            record.acceleration,
            record.velocity,
            record.displacement,
            record.header.dt,
            taper=taper,
            max_period=max_period,
        )
        fourier = FourierRecord(
            header=record.header.copy_for(),
            periods=periods,
            acceleration=fa,
            velocity=fv,
            displacement=fd,
        )
        write_fourier(folder / f"{v2_path.stem}.f", fourier)
        processed.append(v2_path.stem)
    return processed
