"""Emulations of the legacy Fortran programs.

The paper could not modify two of the original programs, so its full
parallelization runs *multiple instances concurrently within temporary
folders* (§VI).  To make that strategy meaningful here, the same
programs are reimplemented with the same shape: a tool is a function of
a single directory — it discovers its inputs by extension inside that
directory, reads its numeric settings from a ``tool.cfg`` file, and
writes its outputs next to them.  No Python-level arguments carry data;
everything goes through files, exactly like running the binary with a
working directory.

Tools provided:

- :func:`correction_tool` — the band-pass correction program behind
  P4 and P13 (they differ only in which parameter file is staged);
- :func:`fourier_tool` — the Fourier-spectrum program behind P7.
"""

from __future__ import annotations

from pathlib import Path

from repro.dsp.detrend import baseline_correct
from repro.dsp.fir import BandPassSpec, design_bandpass, fir_filter
from repro.dsp.integrate import acceleration_to_motion
from repro.dsp.peak import peak_ground_motion
from repro.errors import MissingArtifactError, PipelineError
from repro.formats.params import read_filter_params
from repro.formats.fourier import FourierRecord, write_fourier
from repro.formats.v1 import ComponentRecord, read_component_v1
from repro.formats.v2 import CorrectedRecord, read_v2, write_v2
from repro.spectra.fourier import motion_fourier_spectra

TOOL_CONFIG = "tool.cfg"

#: tool.cfg key naming the pipeline process a tool invocation serves
#: (``P4``/``P13``/``P7``).  Stage plans set it so fault targeting and
#: failure reports name the right process without new tool arguments.
PROCESS_KEY = "PROCESS"


def write_tool_config(folder: Path | str, **settings: object) -> None:
    """Write the tool.cfg settings file the legacy tools read."""
    lines = [f"{key.upper()} {value}" for key, value in sorted(settings.items())]
    (Path(folder) / TOOL_CONFIG).write_text("\n".join(lines) + "\n")


def read_tool_config(folder: Path | str) -> dict[str, str]:
    """Read tool.cfg; a missing file is a missing input, not a default.

    The legacy binaries abort when their settings file is absent — and
    silently falling back to an empty map here once turned a vanished
    config into corrected records filtered with the wrong parameters.
    """
    path = Path(folder) / TOOL_CONFIG
    if not path.exists():
        raise MissingArtifactError(str(path))
    settings: dict[str, str] = {}
    for line in path.read_text().splitlines():
        tokens = line.split(maxsplit=1)
        if len(tokens) == 2:
            settings[tokens[0].upper()] = tokens[1]
    return settings


def correct_component(record: ComponentRecord, spec: BandPassSpec) -> CorrectedRecord:
    """The correction computation shared by P4 and P13.

    Baseline-correct the raw acceleration, apply the Hamming band-pass,
    integrate to velocity and displacement, and extract the peaks.
    """
    dt = record.header.dt
    corrected = baseline_correct(record.acceleration)
    taps = design_bandpass(spec, dt)
    corrected = fir_filter(corrected, taps)
    acc, vel, disp = acceleration_to_motion(corrected, dt)
    peaks = peak_ground_motion(acc, vel, disp, dt)
    return CorrectedRecord(
        header=record.header.copy_for(),
        acceleration=acc,
        velocity=vel,
        displacement=disp,
        peaks=peaks,
        f_stop_low=spec.f_stop_low,
        f_pass_low=spec.f_pass_low,
        f_pass_high=spec.f_pass_high,
        f_stop_high=spec.f_stop_high,
    )


def max_line(record: CorrectedRecord) -> str:
    """The fixed-format maxima line archived in the maxvals files."""
    p = record.peaks
    return (
        f"{record.header.station} {record.header.component} "
        f"{p.pga:15.7E} {p.pga_time:10.4f} "
        f"{p.pgv:15.7E} {p.pgv_time:10.4f} "
        f"{p.pgd:15.7E} {p.pgd_time:10.4f}"
    )


def _resilience(folder: Path):
    """The resilience runtime governing ``folder``, if any (lazy import
    so the tools stay usable without the resilience package active)."""
    from repro.resilience.runtime import runtime_for

    return runtime_for(folder)


def correction_tool(folder: Path | str) -> list[str]:
    """The legacy correction program.

    Contract: the folder contains a filter-parameter file (named by the
    ``PARAMS`` key of tool.cfg, default ``filter.par``) and any number
    of single-component ``*.v1`` files.  For each, a ``*.v2`` corrected
    record and a ``*.max`` maxima line are written beside it.  Returns
    the processed trace names (sorted), mirroring the binary's log.

    Under an active resilience runtime each record runs through
    :meth:`~repro.resilience.runtime.ResilienceRuntime.run_record`: a
    record that fails permanently is reported and *skipped* — the rest
    of the folder still processes, mirroring the real program's
    per-file error handling.  Missing tool.cfg or parameter files stay
    fatal: there is nothing record-scoped to continue with.
    """
    folder = Path(folder)
    settings = read_tool_config(folder)
    params_name = settings.get("PARAMS", "filter.par")
    process = settings.get(PROCESS_KEY, "P4")
    params_path = folder / params_name
    if not params_path.exists():
        raise PipelineError(f"correction tool: no parameter file {params_path}")
    params = read_filter_params(params_path)
    runtime = _resilience(folder)
    processed: list[str] = []
    for v1_path in sorted(folder.glob("*.v1")):
        stem = v1_path.stem

        def body(v1_path: Path = v1_path, stem: str = stem) -> None:
            record = read_component_v1(v1_path)
            station, comp = record.header.station, record.header.component
            spec = params.spec_for(station, comp)
            corrected = correct_component(record, spec)
            write_v2(folder / f"{stem}.v2", corrected)
            (folder / f"{stem}.max").write_text(max_line(corrected) + "\n")

        if runtime is None:
            body()
            processed.append(stem)
        else:
            runtime.apply_file_faults(v1_path)
            if runtime.run_record(process, stem, body):
                processed.append(stem)
    return processed


def fourier_tool(folder: Path | str) -> list[str]:
    """The legacy Fourier-spectrum program.

    Contract: the folder contains ``*.v2`` corrected records; for each,
    a ``*.f`` Fourier-spectra file is written.  tool.cfg keys ``TAPER``
    and ``MAXPERIOD`` set the taper fraction and period band.  Failure
    handling matches :func:`correction_tool`: per-record under an
    active resilience runtime, fatal for unusable settings.
    """
    folder = Path(folder)
    settings = read_tool_config(folder)
    process = settings.get(PROCESS_KEY, "P7")
    try:
        taper = float(settings.get("TAPER", "0.05"))
        max_period = float(settings.get("MAXPERIOD", "20.0"))
    except ValueError as exc:
        raise PipelineError(f"fourier tool: unparseable {TOOL_CONFIG} setting: {exc}")
    runtime = _resilience(folder)
    processed: list[str] = []
    for v2_path in sorted(folder.glob("*.v2")):
        stem = v2_path.stem

        def body(v2_path: Path = v2_path, stem: str = stem) -> None:
            record = read_v2(v2_path)
            periods, fa, fv, fd = motion_fourier_spectra(
                record.acceleration,
                record.velocity,
                record.displacement,
                record.header.dt,
                taper=taper,
                max_period=max_period,
            )
            fourier = FourierRecord(
                header=record.header.copy_for(),
                periods=periods,
                acceleration=fa,
                velocity=fv,
                displacement=fd,
            )
            write_fourier(folder / f"{stem}.f", fourier)

        if runtime is None:
            body()
            processed.append(stem)
        else:
            runtime.apply_file_faults(v2_path)
            if runtime.run_record(process, stem, body):
                processed.append(stem)
    return processed
