"""The two sequential implementations.

- :class:`SequentialOriginal` — all 20 processes in their numeric
  order, faithfully including the three redundant ones (paper §III).
- :class:`SequentialOptimized` — the 17-process version with P6, P12
  and P14 removed; its final outputs are byte-identical to the
  original's, which the optimization analysis (paper §IV) proves and
  the test suite re-checks.
"""

from __future__ import annotations

import logging
import time

from repro.core.context import RunContext
from repro.core.registry import OPTIMIZED_ORDER, ORIGINAL_ORDER, PROCESSES
from repro.core.runner import PipelineImplementation, PipelineResult, ProcessTiming
from repro.observability.tracer import maybe_span

logger = logging.getLogger("repro.core")


class _SequentialBase(PipelineImplementation):
    """Shared machinery: run a fixed process order, one at a time."""

    order: tuple[int, ...] = ()

    def execute(self, ctx: RunContext, result: PipelineResult) -> None:
        tracer = ctx.tracer
        for pid in self.order:
            spec = PROCESSES[pid]
            # Each process is its own stage here, so the trace keeps the
            # same run -> stage -> process shape as the staged plans.
            with maybe_span(
                tracer, spec.label, kind="stage", stage=spec.label,
                strategy="seq", implementation=self.name,
            ) as stage_span:
                with maybe_span(
                    tracer, spec.name, kind="process", pid=pid, stage=spec.label,
                ):
                    start = time.perf_counter()
                    spec.run(ctx)
                    elapsed = time.perf_counter() - start
            logger.debug("%s (%s) finished in %.4f s", spec.label, spec.name, elapsed)
            result.processes.append(
                ProcessTiming(pid=pid, name=spec.name, stage=spec.label, duration_s=elapsed)
            )
            if ctx.metrics is not None:
                from repro.observability.metrics import record_process

                record_process(pid, elapsed)
            result.stage_durations[spec.label] = (
                stage_span.duration_s if stage_span is not None else elapsed
            )


class SequentialOriginal(_SequentialBase):
    """The legacy 20-process sequential pipeline."""

    name = "seq-original"
    description = "Sequential Original: 20 processes in numeric order"
    order = ORIGINAL_ORDER


class SequentialOptimized(_SequentialBase):
    """The optimized 17-process sequential pipeline (P6/P12/P14 removed)."""

    name = "seq-optimized"
    description = "Sequential Optimized: 17 processes, redundancies removed"
    order = OPTIMIZED_ORDER
