"""The two sequential implementations (engine-backed shims).

- :class:`SequentialOriginal` — all 20 processes in their numeric
  order, faithfully including the three redundant ones (paper §III).
- :class:`SequentialOptimized` — the 17-process version with P6, P12
  and P14 removed; its final outputs are byte-identical to the
  original's, which the optimization analysis (paper §IV) proves and
  the test suite re-checks.

.. deprecated::
    These classes are thin shims over the execution engine: each run
    delegates to :class:`repro.engine.SequentialPolicy`.  Prefer
    ``repro.run(..., policy="seq-optimized")`` or the policy objects in
    :mod:`repro.engine` directly.
"""

from __future__ import annotations

from repro.core.context import RunContext
from repro.core.registry import OPTIMIZED_ORDER, ORIGINAL_ORDER
from repro.core.runner import PipelineImplementation, PipelineResult


class _SequentialBase(PipelineImplementation):
    """Shared machinery: run a fixed process order, one at a time."""

    order: tuple[int, ...] = ()

    def execute(self, ctx: RunContext, result: PipelineResult) -> None:
        from repro.engine.executor import Engine
        from repro.engine.policy import SequentialPolicy

        policy = SequentialPolicy(
            self.order, name=self.name, description=self.description
        )
        Engine(policy).execute(ctx, result)


class SequentialOriginal(_SequentialBase):
    """The legacy 20-process sequential pipeline."""

    name = "seq-original"
    description = "Sequential Original: 20 processes in numeric order"
    order = ORIGINAL_ORDER


class SequentialOptimized(_SequentialBase):
    """The optimized 17-process sequential pipeline (P6/P12/P14 removed)."""

    name = "seq-optimized"
    description = "Sequential Optimized: 17 processes, redundancies removed"
    order = OPTIMIZED_ORDER
