"""Shared machinery of the two parallel implementations.

Both run the optimized 17 processes through the 11-stage plan of
Fig. 9 with per-stage barriers; they differ only in which stages use a
parallel strategy.  This module implements every strategy once:

- ``tasks``        — stage members as OpenMP-style tasks + taskwait;
- ``loop``         — the stage's data loop via :func:`parallel_for`;
- ``temp_folders`` — concurrent legacy-tool instances staged into
  temporary folders (stages IV, V, VIII);
- ``seq``          — plain sequential execution.

Every parallel path collects per-item results in deterministic order
and performs merges (the maxvals files) after the barrier, so outputs
are byte-identical to the sequential implementations.
"""

from __future__ import annotations

import logging
import time
from contextlib import ExitStack
from functools import partial

logger = logging.getLogger("repro.core")

from repro.core.artifacts import (
    FILTER_CORRECTED,
    FILTER_PARAMS,
    MAXVALS,
    MAXVALS2,
)
from repro.core.auditing import unit_scope
from repro.core.context import RunContext
from repro.core.processes.common import merge_max_files
from repro.core.processes.p03_separate import separate_station, stations_from_list
from repro.core.processes.p16_response import response_for_trace, trace_pairs
from repro.core.processes.p19_gem import interleaved_files, set_data_apart
from repro.core.registry import PROCESSES
from repro.core.runner import PipelineImplementation, PipelineResult, ProcessTiming
from repro.core.stages import (
    LOOP,
    SEQ,
    STAGES,
    TASKS,
    TEMP_FOLDERS,
    StageSpec,
)
from repro.core.tempfolders import STAGE_PROCESS, StagedInstance, run_staged_instance
from repro.errors import PipelineError
from repro.observability.tracer import maybe_span
from repro.formats.common import COMPONENTS
from repro.formats.v1 import component_v1_name
from repro.formats.v2 import component_v2_name
from repro.formats.fourier import component_f_name
from repro.parallel.omp import TaskGroup, parallel_for, shared_executor


def _resilience(ctx: RunContext):
    """The resilience runtime active for this run's workspace, if any."""
    from repro.resilience.runtime import active_runtime

    return active_runtime(ctx.workspace.root)


def _timed(pid: int, ctx: RunContext, **kwargs: object) -> tuple[int, float]:
    """Run one registry process, returning (pid, elapsed)."""
    spec = PROCESSES[pid]
    start = time.perf_counter()
    spec.run(ctx, **kwargs)  # type: ignore[call-arg]
    return pid, time.perf_counter() - start


class StagedImplementationBase(PipelineImplementation):
    """Executes the 11-stage plan; subclasses choose per-stage strategies."""

    #: Stage name -> strategy; anything missing defaults to ``seq``.
    strategies: dict[str, str] = {}
    #: Backend -> shared executor, populated for the duration of a run.
    _pools: dict = {}

    def execute(self, ctx: RunContext, result: PipelineResult) -> None:
        # One pool per backend, shared by every loop stage of the run:
        # pool creation (and, for the process backend, worker forking)
        # is not paid per stage.
        with ExitStack() as stack:
            self._pools = {
                backend: stack.enter_context(
                    shared_executor(backend, ctx.parallel.workers)
                )
                for backend in {ctx.parallel.loop_backend, ctx.parallel.tool_backend}
            }
            for stage in STAGES:
                strategy = self.strategies.get(stage.name, SEQ)
                with maybe_span(
                    ctx.tracer, stage.name, kind="stage", stage=stage.name,
                    strategy=strategy, implementation=self.name,
                ) as stage_span:
                    start = time.perf_counter()
                    self._run_stage(ctx, result, stage, strategy)
                    elapsed = time.perf_counter() - start
                # When tracing, the stage clock *is* the stage span, so
                # the trace and the result cannot disagree.
                result.stage_durations[stage.name] = (
                    stage_span.duration_s if stage_span is not None else elapsed
                )
                logger.debug(
                    "stage %s (%s) finished in %.4f s",
                    stage.name,
                    strategy,
                    result.stage_durations[stage.name],
                )
            self._pools = {}
        # The temp-folder parent is scratch space; leave the workspace
        # with the same inventory a sequential run produces.
        tmp = ctx.workspace.tmp_dir
        if tmp.exists() and not any(tmp.iterdir()):
            tmp.rmdir()

    # -- strategy dispatch ------------------------------------------------

    def _run_stage(
        self, ctx: RunContext, result: PipelineResult, stage: StageSpec, strategy: str
    ) -> None:
        if strategy == SEQ:
            self._stage_seq(ctx, result, stage)
        elif strategy == TASKS:
            self._stage_tasks(ctx, result, stage)
        elif strategy == LOOP:
            self._stage_loop(ctx, result, stage)
        elif strategy == TEMP_FOLDERS:
            self._stage_temp_folders(ctx, result, stage)
        else:
            raise PipelineError(f"unknown stage strategy {strategy!r}")

    def _record(self, result: PipelineResult, stage: StageSpec, pid: int, duration: float,
                ctx: RunContext | None = None) -> None:
        result.processes.append(
            ProcessTiming(
                pid=pid, name=PROCESSES[pid].name, stage=stage.name, duration_s=duration
            )
        )
        if ctx is not None and ctx.metrics is not None:
            from repro.observability.metrics import record_process

            record_process(pid, duration)

    # -- seq ---------------------------------------------------------------

    def _stage_seq(self, ctx: RunContext, result: PipelineResult, stage: StageSpec) -> None:
        for pid in stage.processes:
            with maybe_span(
                ctx.tracer, PROCESSES[pid].name, kind="process",
                pid=pid, stage=stage.name,
            ):
                _, elapsed = _timed(pid, ctx)
            self._record(result, stage, pid, elapsed, ctx=ctx)

    # -- tasks (stages I, II, XI) -------------------------------------------

    def _stage_tasks(self, ctx: RunContext, result: PipelineResult, stage: StageSpec) -> None:
        # The paper binds 2-4 processors for the lightweight task
        # stages; we cap at the number of member processes.
        workers = min(ctx.parallel.workers, len(stage.processes))
        with TaskGroup(
            backend=ctx.parallel.task_backend, num_workers=workers, tracer=ctx.tracer,
            metrics=ctx.metrics,
        ) as tg:
            for pid in stage.processes:
                tg.task(_timed, pid, ctx, span_name=PROCESSES[pid].name)
        for pid, elapsed in tg.results:
            self._record(result, stage, pid, elapsed, ctx=ctx)

    # -- loops ---------------------------------------------------------------

    def _stage_loop(self, ctx: RunContext, result: PipelineResult, stage: StageSpec) -> None:
        (pid,) = stage.processes
        start = time.perf_counter()
        # The driver-side reads (work lists, metadata) belong to the
        # stage's process too; worker threads start scope-free and take
        # the loop body's per-unit attribution instead.
        with maybe_span(
            ctx.tracer, PROCESSES[pid].name, kind="process", pid=pid, stage=stage.name,
        ), unit_scope(f"P{pid}"):
            if pid == 3:
                stations = stations_from_list(ctx.workspace)
                runtime = _resilience(ctx)
                isolate = runtime.isolation("P3") if runtime is not None else None
                parallel_for(
                    partial(separate_station, str(ctx.workspace.root)),
                    stations,
                    backend=ctx.parallel.loop_backend,
                    num_workers=ctx.parallel.workers,
                    executor=self._pools.get(ctx.parallel.loop_backend),
                    tracer=ctx.tracer,
                    span="separate_station",
                    metrics=ctx.metrics,
                    isolate=isolate,
                )
                if isolate is not None and isolate.reports:
                    runtime.quarantine_reports(isolate.reports, tracer=ctx.tracer)
            elif pid == 10:
                PROCESSES[10].run(ctx, parallel_inner=True)  # type: ignore[call-arg]
            elif pid == 16:
                pairs = trace_pairs(ctx)
                body = partial(_response_unit, str(ctx.workspace.root), ctx.response_config)
                parallel_for(
                    body,
                    pairs,
                    backend=ctx.parallel.loop_backend,
                    num_workers=ctx.parallel.workers,
                    executor=self._pools.get(ctx.parallel.loop_backend),
                    tracer=ctx.tracer,
                    span="response_trace",
                    metrics=ctx.metrics,
                )
            elif pid == 19:
                files = interleaved_files(ctx)
                body = partial(_gem_unit, str(ctx.workspace.root))
                parallel_for(
                    body,
                    files,
                    backend=ctx.parallel.loop_backend,
                    num_workers=ctx.parallel.workers,
                    executor=self._pools.get(ctx.parallel.loop_backend),
                    tracer=ctx.tracer,
                    span="gem_export",
                    metrics=ctx.metrics,
                )
            else:
                raise PipelineError(f"no loop strategy defined for P{pid}")
        self._record(result, stage, pid, time.perf_counter() - start, ctx=ctx)

    # -- temp folders (stages IV, V, VIII) ------------------------------------

    def _stage_temp_folders(
        self, ctx: RunContext, result: PipelineResult, stage: StageSpec
    ) -> None:
        (pid,) = stage.processes
        start = time.perf_counter()
        # Deliberately unscoped: the work-list read is orchestration (it
        # sizes the loop), not part of P4/P7/P13's declared access sets.
        stations = stations_from_list(ctx.workspace)
        if pid in (4, 13):
            params_name = FILTER_PARAMS if pid == 4 else FILTER_CORRECTED
            maxvals_name = MAXVALS if pid == 4 else MAXVALS2
            instances = [
                correction_instance(stage.name, i, station, params_name)
                for i, station in enumerate(stations)
            ]
        elif pid == 7:
            instances = [
                fourier_instance(stage.name, i, station, ctx)
                for i, station in enumerate(stations)
            ]
            maxvals_name = None
        else:
            raise PipelineError(f"no temp-folder strategy defined for P{pid}")
        with maybe_span(
            ctx.tracer, PROCESSES[pid].name, kind="process", pid=pid, stage=stage.name,
        ), unit_scope(f"P{pid}"):
            values = parallel_for(
                partial(run_staged_instance, str(ctx.workspace.root)),
                instances,
                backend=ctx.parallel.tool_backend,
                num_workers=ctx.parallel.workers,
                executor=self._pools.get(ctx.parallel.tool_backend),
                tracer=ctx.tracer,
                span="staged_instance",
                metrics=ctx.metrics,
            )
            runtime = _resilience(ctx)
            if runtime is not None:
                reports = [r for value in values if value for r in value]
                if reports:
                    # Quarantine (and purge) before the merge so the
                    # maxvals files only aggregate surviving stations.
                    runtime.quarantine_reports(reports, tracer=ctx.tracer)
            if maxvals_name is not None:
                merge_max_files(ctx.workspace.work_dir, maxvals_name)
        self._record(result, stage, pid, time.perf_counter() - start, ctx=ctx)


def _response_unit(workspace_root: str, config: object, pair: tuple[str, str]) -> str:
    """Picklable body for the stage IX loop."""
    v2_name, r_name = pair
    return response_for_trace(workspace_root, v2_name, r_name, config)  # type: ignore[arg-type]


def _gem_unit(workspace_root: str, item: tuple[str, bool]) -> list[str]:
    """Picklable body for the stage X loop."""
    file_name, is_response = item
    return set_data_apart(workspace_root, file_name, is_response)


def correction_instance(
    stage: str, index: int, station: str, params_name: str
) -> StagedInstance:
    """Staging description for one correction-tool instance (P4/P13)."""
    inputs = [params_name] + [component_v1_name(station, c) for c in COMPONENTS]
    outputs = [component_v2_name(station, c) for c in COMPONENTS] + [
        f"{station}{c}.max" for c in COMPONENTS
    ]
    return StagedInstance(
        stage=stage,
        index=index,
        tool="correction",
        inputs=tuple(inputs),
        outputs=tuple(outputs),
        config=(
            ("params", params_name),
            ("process", STAGE_PROCESS.get(stage.upper(), "P4")),
        ),
        unit=station,
    )


def fourier_instance(stage: str, index: int, station: str, ctx: RunContext) -> StagedInstance:
    """Staging description for one Fourier-tool instance (P7)."""
    inputs = [component_v2_name(station, c) for c in COMPONENTS]
    outputs = [component_f_name(station, c) for c in COMPONENTS]
    return StagedInstance(
        stage=stage,
        index=index,
        tool="fourier",
        inputs=tuple(inputs),
        outputs=tuple(outputs),
        config=(
            ("taper", str(ctx.taper_fraction)),
            ("maxperiod", str(ctx.fourier_max_period)),
            ("process", STAGE_PROCESS.get(stage.upper(), "P7")),
        ),
        unit=station,
    )
