"""The staged (Fig. 9) implementations' base class — engine-backed shim.

The per-stage strategy machinery that used to live here (``tasks``,
``loop``, ``temp_folders``, ``seq`` execution plus the staging-
instance descriptions) moved to :mod:`repro.engine.executor`, where it
runs every scheduling policy.  This module keeps the legacy surface:

- :class:`StagedImplementationBase` delegates each run to a
  :class:`repro.engine.StagedPolicy` built from its ``strategies``
  mapping, producing byte-identical artifacts and an identical trace
  shape;
- the staging helpers (``correction_instance``, ``fourier_instance``,
  the picklable loop bodies) are re-exported for existing importers.

.. deprecated::
    Prefer ``repro.run(..., policy="full-parallel")`` or the policy
    objects in :mod:`repro.engine` directly.
"""

from __future__ import annotations

from repro.core.context import RunContext
from repro.core.runner import PipelineImplementation, PipelineResult
from repro.engine.executor import (  # noqa: F401  (re-exported legacy surface)
    _gem_unit,
    _resilience,
    _response_unit,
    _timed,
    correction_instance,
    fourier_instance,
)


class StagedImplementationBase(PipelineImplementation):
    """Executes the 11-stage plan; subclasses choose per-stage strategies."""

    #: Stage name -> strategy; anything missing defaults to ``seq``.
    strategies: dict[str, str] = {}

    def execute(self, ctx: RunContext, result: PipelineResult) -> None:
        from repro.engine.executor import Engine
        from repro.engine.policy import StagedPolicy

        policy = StagedPolicy(
            name=self.name, description=self.description, strategies=self.strategies
        )
        Engine(policy).execute(ctx, result)
