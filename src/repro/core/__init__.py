"""The paper's primary contribution: the accelerographic records
processing pipeline and its four implementations.

- :mod:`repro.core.artifacts`    — workspace layout and file naming.
- :mod:`repro.core.context`      — run configuration (:class:`RunContext`).
- :mod:`repro.core.tools`        — "legacy binary" emulations: directory-
  driven tools with no API surface, exactly like the original Fortran
  programs the paper could not modify.
- :mod:`repro.core.processes`    — the 20 numbered processes P0–P19.
- :mod:`repro.core.registry`     — process metadata (language, cost tag,
  declared reads/writes).
- :mod:`repro.core.dependencies` — the input/output dependency analysis
  (networkx DAG, stage-plan validation, antichain discovery).
- :mod:`repro.core.stages`       — the 11-stage reordering of Fig. 9.
- :mod:`repro.core.tempfolders`  — temp-folder staging used to run
  un-modifiable tools concurrently (stages IV, V, VIII).
- :mod:`repro.core.sequential` / :mod:`partial` / :mod:`full` — the four
  implementations; :mod:`repro.core.runner` — shared result types.
"""

from repro.core.artifacts import Workspace
from repro.core.context import ParallelSettings, RunContext
from repro.core.runner import PipelineImplementation, PipelineResult, ProcessTiming
from repro.core.sequential import SequentialOriginal, SequentialOptimized
from repro.core.partial import PartiallyParallel
from repro.core.full import FullyParallel
from repro.core.wavefront import WavefrontParallel
from repro.core.cluster_impl import ClusterParallel
from repro.core.incremental import IncrementalRunner
from repro.core.batch import BatchRunner, Bulletin, EventSummary
from repro.core.verify import (
    VerificationReport,
    compare_workspaces,
    verify_inventory,
    workspace_digests,
)
from repro.core.registry import PROCESSES, ProcessSpec
from repro.core.stages import STAGES, StageSpec
from repro.core.dependencies import (
    build_process_graph,
    critical_path,
    parallelizable_sets,
    validate_sequential_order,
    validate_stage_plan,
)

#: The paper's four implementations, in presentation order.
IMPLEMENTATIONS = (
    SequentialOriginal,
    SequentialOptimized,
    PartiallyParallel,
    FullyParallel,
)

#: The paper's four plus the extensions: the §VIII wavefront, the
#: MPI-style cluster implementation and the make-style incremental
#: runner.
ALL_IMPLEMENTATIONS = IMPLEMENTATIONS + (
    WavefrontParallel,
    ClusterParallel,
    IncrementalRunner,
)


def implementation_by_name(name: str) -> type[PipelineImplementation]:
    """Look up an implementation class by its short name.

    Raises :class:`ValueError` naming every known implementation (and
    the closest match) instead of a bare ``KeyError``.
    """
    for impl in ALL_IMPLEMENTATIONS:
        if impl.name == name:
            return impl
    import difflib

    known = [impl.name for impl in ALL_IMPLEMENTATIONS]
    message = f"unknown implementation {name!r}; known: {known}"
    close = difflib.get_close_matches(str(name), known, n=1)
    if close:
        message += f" (did you mean {close[0]!r}?)"
    raise ValueError(message)


__all__ = [
    "Workspace",
    "ParallelSettings",
    "RunContext",
    "PipelineImplementation",
    "PipelineResult",
    "ProcessTiming",
    "SequentialOriginal",
    "SequentialOptimized",
    "PartiallyParallel",
    "FullyParallel",
    "WavefrontParallel",
    "ClusterParallel",
    "IncrementalRunner",
    "BatchRunner",
    "Bulletin",
    "EventSummary",
    "VerificationReport",
    "compare_workspaces",
    "verify_inventory",
    "workspace_digests",
    "ALL_IMPLEMENTATIONS",
    "PROCESSES",
    "ProcessSpec",
    "STAGES",
    "StageSpec",
    "build_process_graph",
    "critical_path",
    "validate_sequential_order",
    "validate_stage_plan",
    "parallelizable_sets",
    "IMPLEMENTATIONS",
    "implementation_by_name",
]
