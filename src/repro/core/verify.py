"""Workspace verification: inventory checks and cross-run diffing.

The optimization and parallelization claims all rest on "the final
output is unchanged".  This module makes that checkable outside the
test suite:

- :func:`workspace_digests` — relative path -> sha256 of every
  artifact a run produced;
- :func:`verify_inventory` — compare a finished workspace against the
  declared final-artifact inventory (missing / unexpected files);
- :func:`compare_workspaces` — byte-level diff of two runs, as the
  paper's equivalence argument demands;
- :class:`VerificationReport` — structured result with a
  human-readable rendering.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.artifacts import Workspace
from repro.errors import PipelineError


def workspace_digests(workspace: Workspace) -> dict[str, str]:
    """sha256 of every file under work/, keyed by relative path."""
    work = workspace.work_dir
    if not work.is_dir():
        raise PipelineError(f"{workspace.root} has no work/ directory to verify")
    digests: dict[str, str] = {}
    for path in sorted(work.rglob("*")):
        if path.is_file():
            digests[path.relative_to(work).as_posix()] = hashlib.sha256(
                path.read_bytes()
            ).hexdigest()
    return digests


@dataclass
class VerificationReport:
    """Outcome of an inventory or equivalence check."""

    ok: bool
    missing: list[str] = field(default_factory=list)
    unexpected: list[str] = field(default_factory=list)
    differing: list[str] = field(default_factory=list)
    checked: int = 0

    def render(self) -> str:
        """Multi-line human-readable summary."""
        if self.ok:
            return f"OK: {self.checked} artifacts verified"
        lines = [f"FAILED ({self.checked} artifacts checked)"]
        for label, items in (
            ("missing", self.missing),
            ("unexpected", self.unexpected),
            ("differing", self.differing),
        ):
            if items:
                lines.append(f"  {label} ({len(items)}):")
                lines.extend(f"    {item}" for item in items[:20])
                if len(items) > 20:
                    lines.append(f"    ... and {len(items) - 20} more")
        return "\n".join(lines)


def verify_inventory(
    workspace: Workspace, stations: list[str] | None = None
) -> VerificationReport:
    """Check a finished run against the declared artifact inventory.

    ``stations`` narrows the expected inventory — a degraded run is
    verified against its *surviving* stations, since quarantine removed
    every artifact of the rest by design.
    """
    if stations is None:
        stations = workspace.input_stations()
    if not stations:
        raise PipelineError(f"{workspace.root} has no inputs; nothing to verify against")
    expected = set(workspace.final_artifact_names(stations))
    actual = set(workspace_digests(workspace))
    missing = sorted(expected - actual)
    unexpected = sorted(actual - expected)
    return VerificationReport(
        ok=not missing and not unexpected,
        missing=missing,
        unexpected=unexpected,
        checked=len(expected),
    )


def compare_workspaces(a: Workspace, b: Workspace) -> VerificationReport:
    """Byte-level equivalence check of two finished runs."""
    da = workspace_digests(a)
    db = workspace_digests(b)
    missing = sorted(set(da) - set(db))
    unexpected = sorted(set(db) - set(da))
    differing = sorted(name for name in set(da) & set(db) if da[name] != db[name])
    return VerificationReport(
        ok=not missing and not unexpected and not differing,
        missing=missing,
        unexpected=unexpected,
        differing=differing,
        checked=len(set(da) | set(db)),
    )
