"""Workspace layout and artifact naming.

A pipeline run lives in one *workspace* directory:

```
workspace/
  input/          <station>.v1 raw records (the run's input)
  work/           every intermediate and final artifact
  work/tmp/       temp folders for the concurrent-tool stages
```

All names are centralized here so no process module hard-codes a
path; the dependency analysis reasons about the same names.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.auditing import AuditedPath, maybe_activate
from repro.observability.events import maybe_activate as events_activate
from repro.errors import PipelineError
from repro.formats.common import COMPONENTS
from repro.formats.gem import GEM_QUANTITIES, GEM_SOURCES, gem_name
from repro.formats.v1 import component_v1_name
from repro.formats.v2 import component_v2_name
from repro.formats.fourier import component_f_name
from repro.formats.response import component_r_name

FLAGS = "flags.dat"
FLAGS2 = "flags2.dat"
V1_LIST = "v1files.lst"
FILTER_PARAMS = "filter.par"
FILTER_CORRECTED = "filter_corrected.par"
MAXVALS = "maxvals.dat"
MAXVALS2 = "maxvals2.dat"
ACCGRAPH_META = "accgraph.meta"
FOURIER_META = "fourier.meta"
RESPONSE_META = "response.meta"
FOURIERGRAPH_META = "fouriergraph.meta"
RESPONSEGRAPH_META = "responsegraph.meta"


@dataclass(frozen=True)
class Workspace:
    """Path helper for one pipeline run."""

    root: Path

    def __init__(self, root: Path | str) -> None:
        object.__setattr__(self, "root", Path(root))
        # Runs with a .audit/ marker record every file access; workers
        # rebuilding Workspace(root) re-detect the marker, so auditing
        # survives the process backend without any argument plumbing.
        object.__setattr__(self, "_audited", maybe_activate(self.root))
        # The live event bus re-activates the same way off its own
        # .events/ marker (see repro.observability.events).
        events_activate(self.root)

    def _wrap(self, path: Path) -> Path:
        return AuditedPath(path) if self._audited else path

    @property
    def input_dir(self) -> Path:
        """Directory holding the raw ``<station>.v1`` inputs."""
        return self._wrap(self.root / "input")

    @property
    def work_dir(self) -> Path:
        """Directory holding every produced artifact."""
        return self._wrap(self.root / "work")

    @property
    def tmp_dir(self) -> Path:
        """Parent of the per-instance temp folders (stages IV/V/VIII)."""
        return self.work_dir / "tmp"

    def create(self) -> "Workspace":
        """Materialize the directory skeleton (idempotent)."""
        self.input_dir.mkdir(parents=True, exist_ok=True)
        self.work_dir.mkdir(parents=True, exist_ok=True)
        return self

    def require_input(self) -> None:
        """Raise unless the input directory exists and has V1 files."""
        if not self.input_dir.is_dir():
            raise PipelineError(f"workspace {self.root} has no input/ directory")
        if not any(self.input_dir.glob("*.v1")):
            raise PipelineError(f"workspace {self.root} has no .v1 input files")

    # -- canonical artifact paths -------------------------------------

    def work(self, name: str) -> Path:
        """Path of a named artifact inside work/."""
        return self.work_dir / name

    def raw_v1(self, station: str) -> Path:
        """Raw input record of one station."""
        return self.input_dir / f"{station}.v1"

    def component_v1(self, station: str, comp: str) -> Path:
        """Separated per-component raw record (P3/P12 output)."""
        return self.work_dir / component_v1_name(station, comp)

    def component_v2(self, station: str, comp: str) -> Path:
        """Corrected record (P4 then P13 output)."""
        return self.work_dir / component_v2_name(station, comp)

    def component_f(self, station: str, comp: str) -> Path:
        """Fourier spectra file (P7 output)."""
        return self.work_dir / component_f_name(station, comp)

    def component_r(self, station: str, comp: str) -> Path:
        """Response spectra file (P16 output)."""
        return self.work_dir / component_r_name(station, comp)

    def gem(self, station: str, comp: str, source: str, quantity: str) -> Path:
        """One GEM series file (P19 output)."""
        return self.work_dir / gem_name(station, comp, source, quantity)

    def plot_accelerograph(self, station: str) -> Path:
        """Accelerograph plot (P6/P15 output)."""
        return self.work_dir / f"{station}.ps"

    def plot_fourier(self, station: str) -> Path:
        """Fourier-spectrum plot (P9 output)."""
        return self.work_dir / f"{station}f.ps"

    def plot_response(self, station: str) -> Path:
        """Response-spectrum plot (P18 output)."""
        return self.work_dir / f"{station}r.ps"

    # -- inventories ---------------------------------------------------

    def input_stations(self) -> list[str]:
        """Station codes present in input/, sorted."""
        return sorted(p.stem for p in self.input_dir.glob("*.v1"))

    def artifact_paths(self, identity: str, stations: list[str]) -> list[Path]:
        """Concrete files behind one declared artifact identity.

        This is the bridge between the registry's abstract read/write
        declarations and the filesystem — used by the dependency-aware
        incremental runner to fingerprint a process's actual inputs.
        """
        simple = {
            "flags": [self.work(FLAGS)],
            "flags2": [self.work(FLAGS2)],
            "v1_list": [self.work(V1_LIST)],
            "filter_params": [self.work(FILTER_PARAMS)],
            "filter_corrected": [self.work(FILTER_CORRECTED)],
            "maxvals": [self.work(MAXVALS)],
            "maxvals2": [self.work(MAXVALS2)],
            "acc_meta": [self.work(ACCGRAPH_META)],
            "fourier_meta": [self.work(FOURIER_META)],
            "response_meta": [self.work(RESPONSE_META)],
            "fouriergraph_meta": [self.work(FOURIERGRAPH_META)],
            "responsegraph_meta": [self.work(RESPONSEGRAPH_META)],
        }
        if identity in simple:
            return simple[identity]
        if identity == "raw_v1":
            return [self.raw_v1(s) for s in stations]
        per_comp = {
            "comp_v1": self.component_v1,
            "comp_v2": self.component_v2,
            "comp_f": self.component_f,
            "comp_r": self.component_r,
        }
        if identity in per_comp:
            return [per_comp[identity](s, c) for s in stations for c in COMPONENTS]
        per_station = {
            "plot_acc": self.plot_accelerograph,
            "plot_fourier": self.plot_fourier,
            "plot_response": self.plot_response,
        }
        if identity in per_station:
            return [per_station[identity](s) for s in stations]
        if identity == "gem":
            return [
                self.gem(s, c, source, quantity)
                for s in stations
                for c in COMPONENTS
                for source in GEM_SOURCES
                for quantity in GEM_QUANTITIES
            ]
        raise PipelineError(f"unknown artifact identity {identity!r}")

    def final_artifact_names(self, stations: list[str]) -> list[str]:
        """Every artifact name a complete run must produce.

        Used by tests to assert the four implementations agree on both
        the inventory and the bytes.
        """
        names = [
            FLAGS,
            FLAGS2,
            V1_LIST,
            FILTER_PARAMS,
            FILTER_CORRECTED,
            MAXVALS,
            MAXVALS2,
            ACCGRAPH_META,
            FOURIER_META,
            RESPONSE_META,
            FOURIERGRAPH_META,
            RESPONSEGRAPH_META,
        ]
        for station in stations:
            names.append(f"{station}.ps")
            names.append(f"{station}f.ps")
            names.append(f"{station}r.ps")
            for comp in COMPONENTS:
                names.append(component_v1_name(station, comp))
                names.append(component_v2_name(station, comp))
                names.append(component_f_name(station, comp))
                names.append(component_r_name(station, comp))
                for source in GEM_SOURCES:
                    for quantity in GEM_QUANTITIES:
                        names.append(gem_name(station, comp, source, quantity))
        return sorted(names)
