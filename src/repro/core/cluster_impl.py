"""Cluster (MPI-style) pipeline implementation.

Distributes the wavefront's per-station pipelines across SPMD ranks
over a shared filesystem — the architecture of the paper's related
work [9] (strong-motion processing with Python + MPI).  Rank 0 plays
the coordinator: it broadcasts the work list, every rank processes its
round-robin share of stations through the full per-station chain, and
the corner specs are gathered back for the deterministic epilogue.

Outputs are byte-identical to every other implementation (the same
station unit, :func:`~repro.core.wavefront.process_station_wavefront`,
does the work; only the placement differs).
"""

from __future__ import annotations

import time

from repro.core.artifacts import FILTER_CORRECTED, MAXVALS, MAXVALS2
from repro.core.context import RunContext
from repro.core.processes.p00_flags import run_p00
from repro.core.processes.p01_gather import run_p01
from repro.core.processes.p02_params import run_p02
from repro.core.processes.p03_separate import stations_from_list
from repro.core.processes.p05_metadata import run_p05
from repro.core.processes.p08_fourier_meta import run_p08
from repro.core.processes.p11_flags2 import run_p11
from repro.core.processes.p17_response_meta import run_p17
from repro.core.runner import PipelineImplementation, PipelineResult, ProcessTiming
from repro.core.wavefront import _merge_suffixed, process_station_wavefront
from repro.formats.params import FilterParams, write_filter_params
from repro.observability.tracer import maybe_span
from repro.parallel.cluster import Communicator, run_cluster


def _cluster_rank_body(comm: Communicator, ctx: RunContext) -> list:
    """SPMD body: process this rank's round-robin share of stations."""
    if comm.rank == 0:
        stations = stations_from_list(ctx.workspace)
    else:
        stations = None
    stations = comm.bcast(stations, root=0)
    specs = []
    for index in range(comm.rank, len(stations), comm.size):
        specs.extend(process_station_wavefront(ctx, (index, stations[index])))
    gathered = comm.gather(specs, root=0)
    comm.barrier()
    if comm.rank == 0:
        flat = [spec for rank_specs in gathered for spec in rank_specs]
        return flat
    return []


class ClusterParallel(PipelineImplementation):
    """Per-station pipelines distributed across message-passing ranks.

    ``n_ranks`` defaults to the context's worker count.  With one rank
    this degrades to an inline wavefront run (like a single-rank MPI
    job), which keeps the implementation usable on any machine.
    """

    name = "cluster-parallel"
    description = "Cluster: MPI-style ranks over a shared workspace"

    def __init__(self, n_ranks: int | None = None) -> None:
        self.n_ranks = n_ranks

    def execute(self, ctx: RunContext, result: PipelineResult) -> None:
        tracer = ctx.tracer
        # Coordinator prologue (stages I, II, VII), sequential: these
        # are milliseconds and must complete before ranks start.
        with maybe_span(
            tracer, "prologue", kind="stage", stage="prologue",
            strategy="seq", implementation=self.name,
        ) as prologue_span:
            start = time.perf_counter()
            run_p00(ctx)
            run_p01(ctx)
            run_p02(ctx)
            run_p05(ctx)
            run_p08(ctx)
            run_p17(ctx)
            run_p11(ctx)
            elapsed = time.perf_counter() - start
        result.stage_durations["prologue"] = (
            prologue_span.duration_s if prologue_span is not None else elapsed
        )

        with maybe_span(
            tracer, "ranks", kind="stage", stage="ranks",
            strategy="cluster", implementation=self.name,
        ) as ranks_span:
            start = time.perf_counter()
            stations = stations_from_list(ctx.workspace)
            ranks = self.n_ranks if self.n_ranks is not None else ctx.parallel.workers
            ranks = max(1, min(ranks, len(stations)))
            per_rank = run_cluster(_cluster_rank_body, ranks, ctx, tracer=tracer)
            all_specs = per_rank[0]
            elapsed = time.perf_counter() - start
        result.stage_durations["ranks"] = (
            ranks_span.duration_s if ranks_span is not None else elapsed
        )

        with maybe_span(
            tracer, "epilogue", kind="stage", stage="epilogue",
            strategy="seq", implementation=self.name,
        ) as epilogue_span:
            start = time.perf_counter()
            params = FilterParams(default=ctx.default_filter)
            for station, comp, spec in all_specs:
                params.set_override(station, comp, spec)
            write_filter_params(ctx.workspace.work(FILTER_CORRECTED), params)
            _merge_suffixed(ctx.workspace, "max1", MAXVALS)
            _merge_suffixed(ctx.workspace, "max2", MAXVALS2)
            tmp = ctx.workspace.tmp_dir
            if tmp.exists() and not any(tmp.iterdir()):
                tmp.rmdir()
            elapsed = time.perf_counter() - start
        result.stage_durations["epilogue"] = (
            epilogue_span.duration_s if epilogue_span is not None else elapsed
        )
        result.processes.append(
            ProcessTiming(
                pid=-1,
                name=f"{ranks}-rank station pipelines",
                stage="ranks",
                duration_s=result.stage_durations["ranks"],
            )
        )
