"""Cluster (MPI-style) pipeline implementation — engine-backed shim.

Distributes the wavefront's per-station pipelines across SPMD ranks
over a shared filesystem — the architecture of the paper's related
work [9] (strong-motion processing with Python + MPI).  Rank 0 plays
the coordinator: it broadcasts the work list, every rank processes its
round-robin share of stations through the full per-station chain, and
the corner specs are gathered back for the deterministic epilogue.

Outputs are byte-identical to every other implementation (the same
station unit, :func:`~repro.core.wavefront.process_station_wavefront`,
does the work; only the placement differs).

.. deprecated::
    :class:`ClusterParallel` is a thin shim delegating to
    :class:`repro.engine.ClusterPolicy`; prefer
    ``repro.run(..., policy="cluster-parallel")``.
"""

from __future__ import annotations

from repro.core.context import RunContext
from repro.core.processes.p03_separate import stations_from_list
from repro.core.runner import PipelineImplementation, PipelineResult
from repro.core.wavefront import process_station_wavefront
from repro.parallel.cluster import Communicator


def _cluster_rank_body(comm: Communicator, ctx: RunContext) -> list:
    """SPMD body: process this rank's round-robin share of stations."""
    if comm.rank == 0:
        stations = stations_from_list(ctx.workspace)
    else:
        stations = None
    stations = comm.bcast(stations, root=0)
    specs = []
    for index in range(comm.rank, len(stations), comm.size):
        specs.extend(process_station_wavefront(ctx, (index, stations[index])))
    gathered = comm.gather(specs, root=0)
    comm.barrier()
    if comm.rank == 0:
        flat = [spec for rank_specs in gathered for spec in rank_specs]
        return flat
    return []


class ClusterParallel(PipelineImplementation):
    """Per-station pipelines distributed across message-passing ranks.

    ``n_ranks`` defaults to the context's worker count.  With one rank
    this degrades to an inline wavefront run (like a single-rank MPI
    job), which keeps the implementation usable on any machine.
    """

    name = "cluster-parallel"
    description = "Cluster: MPI-style ranks over a shared workspace"

    def __init__(self, n_ranks: int | None = None) -> None:
        self.n_ranks = n_ranks

    def execute(self, ctx: RunContext, result: PipelineResult) -> None:
        from repro.engine.executor import Engine
        from repro.engine.policy import ClusterPolicy

        policy = ClusterPolicy(
            self.n_ranks, name=self.name, description=self.description
        )
        Engine(policy).execute(ctx, result)
