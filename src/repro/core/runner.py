"""Shared result types and the implementation base class."""

from __future__ import annotations

import logging
import time
from abc import ABC, abstractmethod
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any

from repro.core.context import RunContext
from repro.core.registry import PROCESSES
from repro.observability.tracer import Trace, maybe_span

logger = logging.getLogger("repro.core")


def _failure_report_from_dict(data: dict):
    from repro.resilience.quarantine import FailureReport

    return FailureReport.from_dict(data)


@dataclass(frozen=True)
class ProcessTiming:
    """Wall-clock timing of one process execution."""

    pid: int
    name: str
    stage: str
    duration_s: float


@dataclass
class PipelineResult:
    """Outcome of one pipeline run."""

    implementation: str
    total_s: float
    processes: list[ProcessTiming] = field(default_factory=list)
    #: Elapsed wall-clock per stage (stage label -> seconds).  For the
    #: sequential implementations each process is its own "stage".
    stage_durations: dict[str, float] = field(default_factory=dict)
    #: The run's span trace, when the context carried an enabled tracer.
    trace: Trace | None = field(default=None, repr=False, compare=False)
    #: The run's merged sampling profile (driver samples plus worker
    #: shards), when the context carried a profiler.
    profile: Any = field(default=None, repr=False, compare=False)
    #: Failure reports of quarantined records, when the context carried
    #: a fault plan (degraded mode); empty for all-healthy runs.
    quarantine: list = field(default_factory=list)

    def process_duration(self, pid: int) -> float:
        """Total time attributed to one process (0.0 if it never ran)."""
        return sum(p.duration_s for p in self.processes if p.pid == pid)

    def to_dict(self) -> dict[str, Any]:
        """Stable JSON-ready representation (the shared result schema).

        Traces, benches and bulletins all serialize runs through this
        one shape; :meth:`from_dict` round-trips it exactly.
        """
        return {
            "implementation": self.implementation,
            "total_s": self.total_s,
            "processes": [
                {
                    "pid": p.pid,
                    "name": p.name,
                    "stage": p.stage,
                    "duration_s": p.duration_s,
                }
                for p in self.processes
            ],
            "stage_durations": dict(self.stage_durations),
            "trace": self.trace.to_dict() if self.trace is not None else None,
            "profile": self.profile.to_dict() if self.profile is not None else None,
            "quarantine": [r.to_dict() for r in self.quarantine],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PipelineResult":
        """Inverse of :meth:`to_dict`."""
        trace_data = data.get("trace")
        profile_data = data.get("profile")
        if profile_data is not None:
            from repro.observability.profiling import Profile

            profile_data = Profile.from_dict(profile_data)
        return cls(
            implementation=str(data["implementation"]),
            total_s=float(data["total_s"]),
            processes=[
                ProcessTiming(
                    pid=int(p["pid"]),
                    name=str(p["name"]),
                    stage=str(p["stage"]),
                    duration_s=float(p["duration_s"]),
                )
                for p in data.get("processes") or []
            ],
            stage_durations={
                str(k): float(v) for k, v in (data.get("stage_durations") or {}).items()
            },
            trace=Trace.from_dict(trace_data) if trace_data is not None else None,
            profile=profile_data,
            quarantine=[
                _failure_report_from_dict(r) for r in data.get("quarantine") or []
            ],
        )

    def summary_lines(self) -> list[str]:
        """Human-readable per-stage summary."""
        lines = [f"{self.implementation}: {self.total_s:.3f} s total"]
        for stage, duration in self.stage_durations.items():
            lines.append(f"  stage {stage:>4}: {duration:8.3f} s")
        return lines


class PipelineImplementation(ABC):
    """Base class of the four pipeline implementations.

    Subclasses define ``name``/``description`` and :meth:`execute`;
    :meth:`run` wraps it with end-to-end timing.
    """

    name: str = ""
    description: str = ""

    @abstractmethod
    def execute(self, ctx: RunContext, result: PipelineResult) -> None:
        """Run the pipeline, appending timings to ``result``."""

    def run(self, ctx: RunContext) -> PipelineResult:
        """Run end-to-end against the context's workspace."""
        if ctx.audit or ctx.metrics is not None:
            from repro.core.artifacts import Workspace
            from repro.core.auditing import enable_auditing

            # Metrics piggyback on the audit hooks for per-artifact
            # byte counts, so a metrics-carrying run audits too.
            enable_auditing(ctx.workspace.root)
            # Rebuild so the workspace picks up the fresh marker (its
            # audited flag is fixed at construction time).
            ctx.workspace = Workspace(ctx.workspace.root)
        ctx.workspace.create()
        ctx.workspace.require_input()
        stations = ctx.stations()
        logger.info(
            "%s: starting run on %s (%d stations)",
            self.name,
            ctx.workspace.root,
            len(stations),
        )
        result = PipelineResult(implementation=self.name, total_s=0.0)
        runtime = None
        if ctx.resilience is not None:
            from repro.resilience.runtime import enable_resilience

            runtime = enable_resilience(ctx.workspace.root, ctx.resilience)
        tracer = ctx.tracer
        profiling = nullcontext()
        if ctx.profiler is not None:
            from repro.observability.profiling import profiling_session

            # Installed for the run's duration: the sampler thread sees
            # every driver thread, and the parallel runtime's worker
            # shims detect the installation and ship shards home.
            profiling = profiling_session(ctx.profiler, tracer=tracer)
        run_events = None
        heartbeat = None
        completed = False
        if ctx.events:
            from repro.observability import events as run_events

            # The event log is live from here: the marker directory is
            # what pool workers (and a concurrently attached repro-top)
            # discover on disk, and install_run is what lets the
            # parallel runtime build worker emission channels.
            run_events.enable_events(ctx.workspace.root)
            run_events.emit(
                ctx.workspace.root, "run_started",
                schema=run_events.SCHEMA,
                implementation=self.name,
                workspace=str(ctx.workspace.root),
                stations=len(stations),
                workers=ctx.parallel.workers,
                loop_backend=ctx.parallel.loop_backend.value,
                task_backend=ctx.parallel.task_backend.value,
                tool_backend=ctx.parallel.tool_backend.value,
            )
            run_events.install_run(ctx.workspace.root)
            heartbeat = run_events.Heartbeat(ctx.workspace.root)
            heartbeat.start()
        try:
            with profiling, maybe_span(
                tracer,
                self.name,
                kind="run",
                implementation=self.name,
                workspace=str(ctx.workspace.root),
                stations=len(stations),
                workers=ctx.parallel.workers,
                loop_backend=ctx.parallel.loop_backend.value,
                task_backend=ctx.parallel.task_backend.value,
                tool_backend=ctx.parallel.tool_backend.value,
            ) as run_span:
                start = time.perf_counter()
                try:
                    with maybe_span(tracer, self.name, kind="implementation",
                                    implementation=self.name):
                        if ctx.metrics is not None:
                            from repro.observability.metrics import collecting

                            with collecting(ctx.metrics):
                                self.execute(ctx, result)
                        else:
                            self.execute(ctx, result)
                    completed = True
                except Exception:
                    logger.exception("%s: run failed after %.3f s", self.name,
                                     time.perf_counter() - start)
                    raise
                finally:
                    if runtime is not None:
                        from repro.resilience.runtime import disable_resilience

                        result.quarantine = runtime.quarantine.reports()
                        disable_resilience(ctx.workspace.root)
                result.total_s = time.perf_counter() - start
        finally:
            if run_events is not None:
                if heartbeat is not None:
                    heartbeat.stop()
                status = "failed"
                if completed:
                    status = "degraded" if result.quarantine else "ok"
                run_events.emit(
                    ctx.workspace.root, "run_finished",
                    total_s=result.total_s, status=status,
                    quarantined=len(result.quarantine),
                )
                run_events.uninstall_run(ctx.workspace.root)
                # The log stays on disk: repro-top may still be tailing
                # it, and the HTML report/ledger read it post-hoc.
                run_events.release_events(ctx.workspace.root)
        if run_span is not None and tracer is not None:
            result.trace = tracer.subtree(run_span)
        if ctx.profiler is not None:
            result.profile = ctx.profiler.profile
        if ctx.metrics is not None:
            ctx.metrics.gauge(
                "repro_run_total_seconds",
                help="End-to-end wall-clock of the run.",
                implementation=self.name,
            ).set_max(result.total_s)
            if not ctx.audit:
                # Metrics-only runs enabled the audit hooks just for
                # byte counts; drop the marker so later runs against
                # this workspace are not audited by surprise.
                from repro.core.artifacts import Workspace
                from repro.core.auditing import disable_auditing

                disable_auditing(ctx.workspace.root)
                ctx.workspace = Workspace(ctx.workspace.root)
        from repro.observability.ledger import maybe_append_run

        # No-op unless a ledger is configured (REPRO_LEDGER); appending
        # must never fail a run.
        maybe_append_run(ctx, result)
        logger.info("%s: finished in %.3f s", self.name, result.total_s)
        return result

    @staticmethod
    def _timed_process(ctx: RunContext, pid: int, stage: str, result: PipelineResult,
                       **kwargs: object) -> None:
        """Run one registry process with timing bookkeeping."""
        spec = PROCESSES[pid]
        start = time.perf_counter()
        spec.run(ctx, **kwargs)  # type: ignore[call-arg]
        elapsed = time.perf_counter() - start
        result.processes.append(
            ProcessTiming(pid=pid, name=spec.name, stage=stage, duration_s=elapsed)
        )
        if ctx.metrics is not None:
            from repro.observability.metrics import record_process

            record_process(pid, elapsed)
