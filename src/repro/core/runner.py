"""Shared result types and the implementation base class."""

from __future__ import annotations

import logging
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.core.context import RunContext
from repro.core.registry import PROCESSES

logger = logging.getLogger("repro.core")


@dataclass(frozen=True)
class ProcessTiming:
    """Wall-clock timing of one process execution."""

    pid: int
    name: str
    stage: str
    duration_s: float


@dataclass
class PipelineResult:
    """Outcome of one pipeline run."""

    implementation: str
    total_s: float
    processes: list[ProcessTiming] = field(default_factory=list)
    #: Elapsed wall-clock per stage (stage label -> seconds).  For the
    #: sequential implementations each process is its own "stage".
    stage_durations: dict[str, float] = field(default_factory=dict)

    def process_duration(self, pid: int) -> float:
        """Total time attributed to one process (0.0 if it never ran)."""
        return sum(p.duration_s for p in self.processes if p.pid == pid)

    def summary_lines(self) -> list[str]:
        """Human-readable per-stage summary."""
        lines = [f"{self.implementation}: {self.total_s:.3f} s total"]
        for stage, duration in self.stage_durations.items():
            lines.append(f"  stage {stage:>4}: {duration:8.3f} s")
        return lines


class PipelineImplementation(ABC):
    """Base class of the four pipeline implementations.

    Subclasses define ``name``/``description`` and :meth:`execute`;
    :meth:`run` wraps it with end-to-end timing.
    """

    name: str = ""
    description: str = ""

    @abstractmethod
    def execute(self, ctx: RunContext, result: PipelineResult) -> None:
        """Run the pipeline, appending timings to ``result``."""

    def run(self, ctx: RunContext) -> PipelineResult:
        """Run end-to-end against the context's workspace."""
        ctx.workspace.create()
        ctx.workspace.require_input()
        stations = ctx.stations()
        logger.info(
            "%s: starting run on %s (%d stations)",
            self.name,
            ctx.workspace.root,
            len(stations),
        )
        result = PipelineResult(implementation=self.name, total_s=0.0)
        start = time.perf_counter()
        try:
            self.execute(ctx, result)
        except Exception:
            logger.exception("%s: run failed after %.3f s", self.name,
                             time.perf_counter() - start)
            raise
        result.total_s = time.perf_counter() - start
        logger.info("%s: finished in %.3f s", self.name, result.total_s)
        return result

    @staticmethod
    def _timed_process(ctx: RunContext, pid: int, stage: str, result: PipelineResult,
                       **kwargs: object) -> None:
        """Run one registry process with timing bookkeeping."""
        spec = PROCESSES[pid]
        start = time.perf_counter()
        spec.run(ctx, **kwargs)  # type: ignore[call-arg]
        elapsed = time.perf_counter() - start
        result.processes.append(
            ProcessTiming(pid=pid, name=spec.name, stage=stage, duration_s=elapsed)
        )
