"""Temp-folder staging for concurrent legacy tools (stages IV, V, VIII).

The paper's key trick for the un-modifiable Fortran programs (§VI):
run several *instances* concurrently, each inside its own temporary
folder, moving inputs in and outputs back out.  This module reproduces
the mechanics faithfully:

1. create ``work/tmp/<stage>_<index>/``;
2. copy the instance's input files (and its tool.cfg) into it;
3. run the tool against the folder — the tool sees only the folder,
   exactly like a binary launched with that working directory;
4. move the produced outputs back into ``work/``;
5. delete the folder.

(The original also had to copy the EXE into each folder sequentially
"to avoid races"; our tool is a function, so that step has no
analogue — the cost model charges for it instead.)

Outputs land in distinct destination files per instance, so the
parallel loop is race-free; merged artifacts (the ``*.max`` lines) are
combined deterministically afterwards.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, field

from repro.core.artifacts import Workspace
from repro.core.auditing import record, unit_scope
from repro.core.tools import correction_tool, fourier_tool, write_tool_config
from repro.errors import MissingArtifactError, PipelineError

#: Tool registry: names resolvable inside worker processes.
TOOLS = {
    "correction": correction_tool,
    "fourier": fourier_tool,
}

#: Which pipeline process each temp-folder stage executes (Fig. 9).
STAGE_PROCESS = {
    "IV": "P4",
    "V": "P7",
    "VIII": "P13",
}


@dataclass(frozen=True)
class StagedInstance:
    """One concurrent tool instance: what to stage in and collect out."""

    stage: str
    index: int
    tool: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    config: tuple[tuple[str, str], ...] = field(default=())
    #: The record (station) this instance serves — lets the resilience
    #: layer name failures and tolerate the record's missing outputs.
    unit: str = ""

    @property
    def folder_name(self) -> str:
        """Name of the instance's temp folder."""
        return f"{self.stage.lower()}_{self.index:04d}"


def run_staged_instance(workspace_root: str, instance: StagedInstance) -> list:
    """Execute one tool instance in its temp folder (picklable unit).

    Returns the instance's failure reports — empty on a clean run; under
    an active resilience runtime, the reports of records the tool had to
    skip (whose declared outputs are then tolerated missing rather than
    raised as :class:`PipelineError`).  Always removes the temp folder.
    """
    if instance.tool not in TOOLS:
        raise PipelineError(f"unknown staged tool {instance.tool!r}")
    workspace = Workspace(workspace_root)
    work = workspace.work_dir
    folder = workspace.tmp_dir / instance.folder_name
    process = STAGE_PROCESS.get(instance.stage.upper(), f"stage-{instance.stage}")
    from repro.resilience.runtime import runtime_for

    runtime = runtime_for(workspace.root)
    reports: list = []
    with unit_scope(process, instance.folder_name):
        folder.mkdir(parents=True, exist_ok=True)
        try:
            for name in instance.inputs:
                src = work / name
                if not src.exists():
                    raise MissingArtifactError(str(src), f"stage {instance.stage}")
                # shutil bypasses Path.open, so the staging copies and
                # the collection moves are recorded explicitly.
                record(workspace.root, f"work/{name}", "read")
                shutil.copy2(src, folder / name)
            if instance.config:
                write_tool_config(folder, **dict(instance.config))
            if runtime is not None:
                runtime.apply_config_faults(folder, process)
            TOOLS[instance.tool](folder)
            if runtime is not None:
                reports = runtime.drain_pending()
            failed = {r.record for r in reports}
            for name in instance.outputs:
                produced = folder / name
                if not produced.exists():
                    if _station_of_artifact(name) in failed:
                        # The tool reported this record's failure; its
                        # outputs (and any sibling component's written
                        # before the failure) are dropped at quarantine.
                        continue
                    raise PipelineError(
                        f"stage {instance.stage} instance {instance.index}: "
                        f"tool {instance.tool!r} did not produce {name}"
                    )
                record(workspace.root, f"work/{name}", "write")
                shutil.move(str(produced), work / name)
        finally:
            shutil.rmtree(folder, ignore_errors=True)
    return reports


def _station_of_artifact(name: str) -> str:
    """Station of a per-trace artifact file name (``ST01l.v2`` -> ``ST01``)."""
    from repro.formats.v1 import station_of_trace

    return station_of_trace(name.split(".", 1)[0])
