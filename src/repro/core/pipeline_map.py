"""Textual rendering of the pipeline's structure (Figs. 5 and 9).

Produces the machine-derived equivalents of the paper's two structure
figures: the per-process I/O table (Fig. 5) and the stage plan with
per-implementation strategies and dependency edges (Fig. 9), straight
from the registry and the dependency analysis — so the printed tables
are guaranteed to match what the code actually executes.
"""

from __future__ import annotations

from repro.bench.report import format_table
from repro.core.dependencies import build_process_graph, parallelizable_sets
from repro.core.registry import (
    OPTIMIZED_ORDER,
    ORIGINAL_ORDER,
    PROCESSES,
    REDUNDANT_PROCESSES,
)
from repro.core.stages import STAGES

_COST_LEGEND = {
    "light": "light",
    "heavy_io": "heavy I/O",
    "heavy_flops": "heavy FLOPS",
    "plotting": "plotting",
}


def render_process_table() -> str:
    """The Fig. 5 equivalent: every process with language, cost and I/O."""
    rows = []
    for pid in ORIGINAL_ORDER:
        spec = PROCESSES[pid]
        rows.append(
            (
                spec.label,
                spec.name,
                spec.lang,
                _COST_LEGEND[spec.cost],
                ", ".join(str(r) for r in spec.reads) or "-",
                ", ".join(str(w) for w in spec.writes),
                "yes" if pid in REDUNDANT_PROCESSES else "",
            )
        )
    return format_table(
        ("P", "process", "lang", "cost", "reads", "writes", "redundant"),
        rows,
    )


def render_stage_plan() -> str:
    """The Fig. 9 equivalent: stages, strategies and dependency edges."""
    rows = []
    for stage in STAGES:
        members = ", ".join(f"P{pid}" for pid in stage.processes)
        rows.append(
            (
                stage.name,
                members,
                stage.partial_strategy,
                stage.full_strategy,
                stage.loop_unit or "-",
            )
        )
    table = format_table(
        ("stage", "processes", "partial", "full", "loop unit"), rows
    )
    graph = build_process_graph(OPTIMIZED_ORDER)
    edges = sorted(
        (a, b, graph.edges[a, b]["kind"], graph.edges[a, b]["artifact"])
        for a, b in graph.edges
    )
    edge_lines = [
        f"  P{a} -> P{b}  [{kind.upper():3s}] via {artifact}"
        for a, b, kind, artifact in edges
    ]
    layers = parallelizable_sets(OPTIMIZED_ORDER)
    layer_lines = [
        f"  layer {i}: " + ", ".join(f"P{pid}" for pid in layer)
        for i, layer in enumerate(layers)
    ]
    return "\n".join(
        [
            table,
            "",
            f"dependency edges ({len(edges)}):",
            *edge_lines,
            "",
            "antichain layers (maximal concurrency the dependencies allow):",
            *layer_lines,
        ]
    )


def render_pipeline_map() -> str:
    """Both tables, for ``repro-bench pipeline-map``."""
    return "\n\n".join(
        [
            "Process inventory (paper Fig. 5)",
            render_process_table(),
            "Stage plan and dependencies (paper Fig. 9)",
            render_stage_plan(),
        ]
    )
