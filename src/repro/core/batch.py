"""Multi-event batch processing and bulletin generation.

The Salvadoran observatory publishes a monthly seismic-activity
bulletin (paper ref. [21]: 241 events in December 2023 alone); the
pipeline of this library is what produces the per-event numbers.  This
module runs a whole catalog — one workspace per event — and assembles
the bulletin: per event, the triggered stations, peak motions, the
response-spectrum highlights, intensity measures, and the processing
time of the chosen implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.context import ParallelSettings, RunContext
from repro.core.runner import PipelineImplementation, PipelineResult
from repro.core.verify import verify_inventory
from repro.dsp.intensity import arias_intensity, significant_duration
from repro.errors import PipelineError
from repro.formats.common import COMPONENTS
from repro.formats.response import read_response
from repro.formats.v2 import read_v2
from repro.observability.tracer import Tracer, maybe_span
from repro.spectra.response import ResponseSpectrumConfig
from repro.synth.events import EventSpec


@dataclass(frozen=True)
class EventSummary:
    """One bulletin row."""

    event_id: str
    date: str
    magnitude: float
    n_stations: int
    total_points: int
    max_pga_gal: float
    max_pga_station: str
    max_sa02_gal: float
    max_sa10_gal: float
    max_arias_cm_s: float
    max_significant_duration_s: float
    processing_time_s: float
    implementation: str
    #: ``ok`` — all stations published; ``degraded`` — the run finished
    #: but quarantined stations (the row covers survivors only);
    #: ``failed`` — the event produced no publishable result at all.
    status: str = "ok"
    #: Stable one-line descriptions of the quarantined records.
    quarantined: tuple[str, ...] = ()
    #: Failure class of a ``failed`` event (exception type name only —
    #: messages may carry workspace paths, which must not leak into the
    #: backend-invariant bulletin text).
    failure: str = ""


@dataclass
class Bulletin:
    """A processed catalog's bulletin."""

    title: str
    events: list[EventSummary] = field(default_factory=list)

    def render(self) -> str:
        """Fixed-width text bulletin (the observatory's report shape).

        An all-healthy bulletin renders exactly as it always has; any
        degraded or failed event appends the degraded-mode section of
        :meth:`degraded_lines` after the totals.
        """
        published = [ev for ev in self.events if ev.status != "failed"]
        lines = [
            self.title,
            "=" * len(self.title),
            "",
            f"{'event':<12} {'date':<11} {'M':>4} {'sta':>4} {'points':>8} "
            f"{'PGA gal':>8} {'@stn':>6} {'SA0.2':>8} {'SA1.0':>8} "
            f"{'Ia cm/s':>8} {'D5-95 s':>8} {'proc s':>7}",
        ]
        for ev in published:
            lines.append(
                f"{ev.event_id:<12} {ev.date:<11} {ev.magnitude:>4.1f} "
                f"{ev.n_stations:>4} {ev.total_points:>8,} "
                f"{ev.max_pga_gal:>8.1f} {ev.max_pga_station:>6} "
                f"{ev.max_sa02_gal:>8.1f} {ev.max_sa10_gal:>8.1f} "
                f"{ev.max_arias_cm_s:>8.2f} {ev.max_significant_duration_s:>8.2f} "
                f"{ev.processing_time_s:>7.2f}"
            )
        total_points = sum(ev.total_points for ev in published)
        total_time = sum(ev.processing_time_s for ev in published)
        lines.append("")
        lines.append(
            f"{len(published)} events, {total_points:,} data points, "
            f"{total_time:.1f} s total processing"
        )
        if total_time > 0:
            lines.append(f"throughput: {total_points / total_time:,.0f} data points/s")
        lines.extend(self.degraded_lines())
        return "\n".join(lines)

    def degraded_lines(self) -> list[str]:
        """The degraded-mode section (empty when every event is ok).

        Deliberately free of paths, timings and worker identities: the
        acceptance bar is that the same fault plan yields *identical*
        degraded text on every implementation and backend.
        """
        troubled = [ev for ev in self.events if ev.status != "ok"]
        if not troubled:
            return []
        lines = ["", "degraded events", "---------------"]
        for ev in troubled:
            if ev.status == "failed":
                lines.append(f"{ev.event_id:<12} failed: {ev.failure}")
                continue
            noun = "record" if len(ev.quarantined) == 1 else "records"
            lines.append(
                f"{ev.event_id:<12} degraded: {len(ev.quarantined)} {noun} quarantined"
            )
            lines.extend(f"  {line}" for line in ev.quarantined)
        return lines

    def degraded_text(self) -> str:
        """The degraded section as one string (convergence comparisons)."""
        return "\n".join(self.degraded_lines())

    def write(self, path: Path | str) -> None:
        """Write the rendered bulletin to disk."""
        Path(path).write_text(self.render() + "\n")


def summarize_event_run(
    ctx: RunContext, event: EventSpec, result: PipelineResult
) -> EventSummary:
    """Extract one bulletin row from a finished run's artifacts.

    A degraded run's row covers the surviving stations only — the
    quarantined ones have no artifacts left to summarize (the runtime
    purged them by design) and are reported in the bulletin's
    degraded-mode section instead.
    """
    excluded = {report.record for report in result.quarantine}
    stations = [s for s in ctx.stations() if s not in excluded]
    max_pga = 0.0
    max_pga_station = "-"
    max_sa02 = 0.0
    max_sa10 = 0.0
    max_arias = 0.0
    max_duration = 0.0
    total_points = 0
    for station in stations:
        for comp in COMPONENTS:
            rec = read_v2(ctx.workspace.component_v2(station, comp), process="bulletin")
            total_points += rec.header.npts if comp == "l" else 0
            pga = abs(rec.peaks.pga)
            if comp != "v" and pga > max_pga:
                max_pga = pga
                max_pga_station = station
            dt = rec.header.dt
            max_arias = max(max_arias, arias_intensity(rec.acceleration, dt))
            max_duration = max(
                max_duration, significant_duration(rec.acceleration, dt)
            )
            resp = read_response(ctx.workspace.component_r(station, comp), process="bulletin")
            d_idx = int(np.argmin(np.abs(resp.dampings - 0.05)))
            i02 = int(np.argmin(np.abs(resp.periods - 0.2)))
            i10 = int(np.argmin(np.abs(resp.periods - 1.0)))
            max_sa02 = max(max_sa02, resp.sa[d_idx, i02])
            max_sa10 = max(max_sa10, resp.sa[d_idx, i10])
    return EventSummary(
        event_id=event.event_id,
        date=event.date,
        magnitude=event.magnitude,
        n_stations=len(stations),
        total_points=total_points,
        max_pga_gal=max_pga,
        max_pga_station=max_pga_station,
        max_sa02_gal=max_sa02,
        max_sa10_gal=max_sa10,
        max_arias_cm_s=max_arias,
        max_significant_duration_s=max_duration,
        processing_time_s=result.total_s,
        implementation=result.implementation,
        status="degraded" if excluded else "ok",
        quarantined=tuple(report.describe() for report in result.quarantine),
    )


@dataclass
class BatchRunner:
    """Processes a catalog of events, one workspace per event."""

    implementation: PipelineImplementation
    root: Path
    scale: float = 1.0
    response_config: ResponseSpectrumConfig | None = None
    parallel: ParallelSettings | None = None
    verify: bool = True
    #: Shared tracer: one trace spanning every event's run, with a
    #: ``batch`` root span over the per-event ``run`` spans.
    tracer: Tracer | None = None
    #: Shared metrics registry: every event's run merges into it (see
    #: :mod:`repro.observability.metrics`).
    metrics: "object | None" = None
    #: Optional fault plans, keyed by event id (see
    #: :mod:`repro.resilience`).  An event with a plan runs in degraded
    #: mode: quarantined records drop out of its bulletin row, and a
    #: pipeline-fatal fault downgrades the event to ``failed`` instead
    #: of aborting the whole batch.  Events without a plan keep the
    #: all-or-nothing behaviour.
    resilience_plans: "dict | None" = None
    #: Stream live telemetry events per event workspace (see
    #: :mod:`repro.observability.events`): each event's run writes its
    #: own ``<root>/<event>/.events/`` log, closed with a batch-layer
    #: ``batch_event_finished`` summary, so ``repro-top`` can follow
    #: whichever event is currently processing.
    events: bool = False

    def run(self, events: list[EventSpec], *, title: str = "Seismic activity bulletin") -> Bulletin:
        """Generate, process and summarize every event."""
        if not events:
            raise PipelineError("batch runner needs at least one event")
        bulletin = Bulletin(title=title)
        with maybe_span(
            self.tracer, title, kind="batch",
            events=len(events), implementation=self.implementation.name,
        ):
            self._run_events(events, bulletin)
        return bulletin

    def _run_events(self, events: list[EventSpec], bulletin: Bulletin) -> None:
        for event in events:
            plan = (self.resilience_plans or {}).get(event.event_id)
            ctx = RunContext.for_directory(
                Path(self.root) / event.event_id,
                tracer=self.tracer,
                metrics=self.metrics,  # type: ignore[arg-type]
                events=self.events,
                **(
                    {"response_config": self.response_config}
                    if self.response_config is not None
                    else {}
                ),
                **({"parallel": self.parallel} if self.parallel is not None else {}),
                **({"resilience": plan} if plan is not None else {}),
            )
            # Imported lazily: repro.bench imports repro.core at package
            # level, so a module-level import here would be circular.
            from repro.bench.workloads import materialize, scaled_workload
            from repro.synth.dataset import generate_event_dataset

            if self.scale < 1.0:
                workload = scaled_workload(event, self.scale)
                materialize(event, workload, ctx.workspace.input_dir)
            else:
                generate_event_dataset(event, ctx.workspace.input_dir)
            try:
                result = self.implementation.run(ctx)
            except PipelineError as exc:
                if plan is None:
                    raise
                # Only fault-injected events may fail soft: a clean
                # event dying is still a batch-fatal pipeline bug.
                bulletin.events.append(self._failed_event(event, exc))
                self._emit_batch_event(ctx, event, "failed", 0)
                continue
            if self.verify:
                excluded = {report.record for report in result.quarantine}
                survivors = [s for s in ctx.stations() if s not in excluded]
                report = verify_inventory(ctx.workspace, stations=survivors)
                if not report.ok:
                    raise PipelineError(
                        f"event {event.event_id}: artifact inventory check failed\n"
                        + report.render()
                    )
            summary = summarize_event_run(ctx, event, result)
            bulletin.events.append(summary)
            self._emit_batch_event(ctx, event, summary.status, len(summary.quarantined))

    def _emit_batch_event(
        self, ctx: RunContext, event: EventSpec, status: str, quarantined: int
    ) -> None:
        """Close the event's log with a batch-layer summary (no-op when
        the run was not event-logged)."""
        if not self.events:
            return
        from repro.observability.events import emit

        emit(
            ctx.workspace.root, "batch_event_finished",
            event_id=event.event_id, status=status, quarantined=quarantined,
        )

    @staticmethod
    def _failed_event(event: EventSpec, exc: PipelineError) -> EventSummary:
        """A ``failed`` bulletin row (no publishable numbers at all)."""
        return EventSummary(
            event_id=event.event_id,
            date=event.date,
            magnitude=event.magnitude,
            n_stations=0,
            total_points=0,
            max_pga_gal=0.0,
            max_pga_station="-",
            max_sa02_gal=0.0,
            max_sa10_gal=0.0,
            max_arias_cm_s=0.0,
            max_significant_duration_s=0.0,
            processing_time_s=0.0,
            implementation="-",
            status="failed",
            failure=type(exc).__name__,
        )
