"""Site-characterization spectral tools.

Two standard companions of strong-motion spectral analysis:

- **Konno–Ohmachi smoothing** — the logarithmic-bandwidth smoothing
  window ``W(f, fc) = [sin(b log10(f/fc)) / (b log10(f/fc))]^4``
  (Konno & Ohmachi 1998), the de-facto standard for smoothing Fourier
  spectra before taking ratios;
- **H/V spectral ratio** — the horizontal-to-vertical ratio used to
  estimate a site's fundamental frequency from a single
  three-component record (Nakamura's technique), computed from the
  pipeline's own Fourier spectra.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignalError


def konno_ohmachi_window(freqs: np.ndarray, center: float, bandwidth: float = 40.0) -> np.ndarray:
    """Konno–Ohmachi weights of every frequency around one center."""
    freqs = np.asarray(freqs, dtype=float)
    if center <= 0:
        raise SignalError(f"center frequency must be positive, got {center}")
    if bandwidth <= 0:
        raise SignalError(f"bandwidth coefficient must be positive, got {bandwidth}")
    with np.errstate(divide="ignore", invalid="ignore"):
        x = bandwidth * np.log10(freqs / center)
        w = (np.sin(x) / x) ** 4
    w[np.isnan(w)] = 1.0  # f == center
    w[freqs <= 0] = 0.0
    return w


def konno_ohmachi_smooth(
    freqs: np.ndarray,
    amplitude: np.ndarray,
    *,
    bandwidth: float = 40.0,
    max_points: int = 4096,
) -> np.ndarray:
    """Smooth an amplitude spectrum with Konno–Ohmachi windows.

    O(n^2) in the number of frequencies; spectra longer than
    ``max_points`` are rejected (decimate first) to keep that explicit.
    """
    freqs = np.asarray(freqs, dtype=float)
    amplitude = np.asarray(amplitude, dtype=float)
    if freqs.shape != amplitude.shape:
        raise SignalError("frequencies and amplitude must have equal shape")
    if freqs.size == 0:
        raise SignalError("cannot smooth an empty spectrum")
    if freqs.size > max_points:
        raise SignalError(
            f"spectrum has {freqs.size} points (> {max_points}); decimate before smoothing"
        )
    positive = freqs > 0
    out = amplitude.astype(float).copy()
    pf = freqs[positive]
    pa = amplitude[positive]
    smoothed = np.empty_like(pa)
    for i, fc in enumerate(pf):
        w = konno_ohmachi_window(pf, fc, bandwidth)
        total = w.sum()
        smoothed[i] = float(np.dot(w, pa) / total) if total > 0 else pa[i]
    out[positive] = smoothed
    return out


@dataclass(frozen=True)
class HvResult:
    """Outcome of an H/V analysis."""

    freqs: np.ndarray
    ratio: np.ndarray
    peak_frequency: float
    peak_amplitude: float


def hv_spectral_ratio(
    freqs: np.ndarray,
    fas_horizontal_1: np.ndarray,
    fas_horizontal_2: np.ndarray,
    fas_vertical: np.ndarray,
    *,
    bandwidth: float = 40.0,
    band: tuple[float, float] = (0.2, 20.0),
) -> HvResult:
    """Nakamura H/V ratio from the three components' Fourier spectra.

    The horizontal spectrum is the geometric mean of the two
    components; all three spectra are Konno–Ohmachi smoothed before
    dividing.  The peak of the ratio inside ``band`` estimates the
    site's fundamental frequency.
    """
    freqs = np.asarray(freqs, dtype=float)
    h1 = np.asarray(fas_horizontal_1, dtype=float)
    h2 = np.asarray(fas_horizontal_2, dtype=float)
    v = np.asarray(fas_vertical, dtype=float)
    if not (freqs.shape == h1.shape == h2.shape == v.shape):
        raise SignalError("H/V inputs must share one frequency grid")
    if np.any(h1 < 0) or np.any(h2 < 0) or np.any(v < 0):
        raise SignalError("Fourier amplitudes must be non-negative")
    horizontal = np.sqrt(np.maximum(h1, 0) * np.maximum(h2, 0))
    h_s = konno_ohmachi_smooth(freqs, horizontal, bandwidth=bandwidth)
    v_s = konno_ohmachi_smooth(freqs, v, bandwidth=bandwidth)
    floor = max(v_s[v_s > 0].min() if np.any(v_s > 0) else 1.0, 1e-300)
    ratio = h_s / np.maximum(v_s, floor)

    lo, hi = band
    in_band = (freqs >= lo) & (freqs <= hi)
    if not np.any(in_band):
        raise SignalError(f"no frequencies inside the H/V band {band}")
    idx = int(np.argmax(np.where(in_band, ratio, -np.inf)))
    return HvResult(
        freqs=freqs,
        ratio=ratio,
        peak_frequency=float(freqs[idx]),
        peak_amplitude=float(ratio[idx]),
    )
