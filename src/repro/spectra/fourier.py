"""Fourier amplitude spectra (process P7).

The pipeline computes, for every corrected component, the Fourier
amplitude spectra of acceleration, velocity and displacement and writes
them against *period* (the paper's Fig. 3 plots period on the x-axis).
The velocity spectrum is the one later searched for the FPL/FSL
inflection point.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.fft import rfft, rfft_frequencies
from repro.dsp.window import apply_taper
from repro.errors import SignalError


def fourier_amplitude_spectrum(
    signal: np.ndarray,
    dt: float,
    *,
    taper: float = 0.05,
    pure: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Single-sided Fourier amplitude spectrum.

    Returns ``(frequencies_hz, amplitude)`` with the physical scaling
    ``|X(f)| = dt * |DFT|`` so the amplitude approximates the
    continuous transform (units: input units × seconds).  The zero-
    frequency bin is included; callers working in the period domain
    drop it.
    """
    signal = np.asarray(signal, dtype=float)
    if signal.ndim != 1 or signal.size == 0:
        raise SignalError("fourier_amplitude_spectrum expects a non-empty 1-D signal")
    if dt <= 0:
        raise SignalError(f"sample interval must be positive, got {dt}")
    tapered = apply_taper(signal, taper) if taper > 0 else signal
    spectrum = rfft(tapered, pure=pure)
    freqs = rfft_frequencies(signal.shape[0], dt)
    return freqs, dt * np.abs(spectrum)


def motion_fourier_spectra(
    acc: np.ndarray,
    vel: np.ndarray,
    disp: np.ndarray,
    dt: float,
    *,
    taper: float = 0.05,
    max_period: float = 20.0,
    min_period: float | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Fourier spectra of the three motion series against period.

    Returns ``(periods, fas_acc, fas_vel, fas_disp)`` with periods
    ascending and clipped to ``[min_period, max_period]`` (the paper
    plots 0.02 s – 20 s).  ``min_period`` defaults to two sample
    intervals (the Nyquist period).
    """
    freqs, fa = fourier_amplitude_spectrum(acc, dt, taper=taper)
    _, fv = fourier_amplitude_spectrum(vel, dt, taper=taper)
    _, fd = fourier_amplitude_spectrum(disp, dt, taper=taper)
    if min_period is None:
        min_period = 2.0 * dt
    # Drop the zero-frequency bin, convert to period, clip and sort.
    with np.errstate(divide="ignore"):
        periods = 1.0 / freqs[1:]
    keep = (periods >= min_period) & (periods <= max_period)
    order = np.argsort(periods[keep])
    periods = periods[keep][order]
    return periods, fa[1:][keep][order], fv[1:][keep][order], fd[1:][keep][order]


def smooth_log(amplitude: np.ndarray, half_width: int = 3) -> np.ndarray:
    """Running geometric-mean smoothing of a positive spectrum.

    Strong-motion spectra are jagged; the inflection search runs on a
    log-domain boxcar-smoothed copy.  Zeros are floored at the smallest
    positive value present to keep the logarithm finite.
    """
    amplitude = np.asarray(amplitude, dtype=float)
    if half_width < 0:
        raise SignalError(f"half_width must be >= 0, got {half_width}")
    if amplitude.size == 0 or half_width == 0:
        return amplitude.copy()
    positive = amplitude[amplitude > 0]
    floor = positive.min() if positive.size else 1.0
    loga = np.log(np.maximum(amplitude, floor))
    kernel = np.ones(2 * half_width + 1) / (2 * half_width + 1)
    padded = np.pad(loga, half_width, mode="edge")
    smoothed = np.convolve(padded, kernel, mode="valid")
    return np.exp(smoothed)
