"""Spectral analysis of strong-motion records.

- :mod:`repro.spectra.fourier` — Fourier amplitude spectra of the
  corrected acceleration/velocity/displacement (process P7).
- :mod:`repro.spectra.inflection` — the FPL/FSL corner search in the
  velocity Fourier spectrum (process P10, Fig. 3 of the paper).
- :mod:`repro.spectra.response` — elastic response spectra by three
  methods: Nigam–Jennings (exact for piecewise-linear excitation,
  O(D) per oscillator), Duhamel convolution (the legacy O(D^2)
  formulation the paper's complexity bound describes) and a
  frequency-domain solver used as a cross-check.
"""

from repro.spectra.fourier import (
    fourier_amplitude_spectrum,
    motion_fourier_spectra,
    smooth_log,
)
from repro.spectra.inflection import (
    InflectionResult,
    find_inflection_point,
    corners_from_inflection,
)
from repro.spectra.site import (
    HvResult,
    hv_spectral_ratio,
    konno_ohmachi_smooth,
    konno_ohmachi_window,
)
from repro.spectra.response import (
    ResponseSpectrumConfig,
    ResponseSpectrum,
    sdof_coefficients,
    sdof_response_history,
    response_spectrum,
    response_spectrum_nigam_jennings,
    response_spectrum_nigam_jennings_vectorized,
    response_spectrum_duhamel,
    response_spectrum_frequency_domain,
    paper_grid,
)

__all__ = [
    "fourier_amplitude_spectrum",
    "motion_fourier_spectra",
    "smooth_log",
    "InflectionResult",
    "find_inflection_point",
    "corners_from_inflection",
    "HvResult",
    "hv_spectral_ratio",
    "konno_ohmachi_smooth",
    "konno_ohmachi_window",
    "ResponseSpectrumConfig",
    "ResponseSpectrum",
    "sdof_coefficients",
    "sdof_response_history",
    "response_spectrum",
    "response_spectrum_nigam_jennings",
    "response_spectrum_nigam_jennings_vectorized",
    "response_spectrum_duhamel",
    "response_spectrum_frequency_domain",
    "paper_grid",
]
