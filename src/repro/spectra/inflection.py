"""FPL/FSL corner recovery from the velocity Fourier spectrum (P10).

Below the event's corner the velocity Fourier spectrum of a real
record stops falling and flattens into (or rises with) the noise floor.
The legacy ``CalculateInflectionPoint`` walks the spectrum toward long
periods — "searching for slope changes in data points for periods
greater than one second" with early termination (paper §V-B) — and the
period of the first persistent slope reversal fixes the long-period
cut of the definitive band-pass: FPL (pass) at the inflection
frequency and FSL (stop) a fixed ratio below it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.fir import BandPassSpec
from repro.errors import SignalError
from repro.spectra.fourier import smooth_log


@dataclass(frozen=True)
class InflectionResult:
    """Outcome of the inflection search on one velocity spectrum."""

    period: float
    fpl: float
    fsl: float
    found: bool
    scanned: int

    @property
    def frequency(self) -> float:
        """Corner frequency (Hz) of the detected inflection."""
        return 1.0 / self.period


def find_inflection_point(
    periods: np.ndarray,
    velocity_fas: np.ndarray,
    *,
    min_period: float = 1.0,
    smoothing_half_width: int = 4,
    slope_tolerance: float = 0.0,
    persistence: int = 3,
    fsl_ratio: float = 0.5,
    fallback_period: float = 10.0,
) -> InflectionResult:
    """Locate the long-period inflection of a velocity Fourier spectrum.

    Scans log-log slopes from ``min_period`` toward longer periods and
    terminates early at the first run of ``persistence`` consecutive
    non-decreasing steps (slope >= ``slope_tolerance``) — the point
    where the spectrum stops decaying and noise takes over.  Returns
    the inflection period, FPL = 1/period and FSL = ``fsl_ratio`` ×
    FPL.  When no inflection exists (clean synthetic records), the
    fallback period caps the usable band instead, with ``found=False``.
    """
    periods = np.asarray(periods, dtype=float)
    velocity_fas = np.asarray(velocity_fas, dtype=float)
    if periods.shape != velocity_fas.shape or periods.size == 0:
        raise SignalError("periods and velocity spectrum must be equal-length, non-empty")
    if not np.all(np.diff(periods) > 0):
        raise SignalError("periods must be strictly ascending")
    if persistence < 1:
        raise SignalError(f"persistence must be >= 1, got {persistence}")

    smoothed = smooth_log(velocity_fas, smoothing_half_width)
    start = int(np.searchsorted(periods, min_period, side="left"))
    scanned = 0
    run = 0
    inflection_idx: int | None = None
    floor = smoothed[smoothed > 0].min() if np.any(smoothed > 0) else 1.0
    log_amp = np.log(np.maximum(smoothed, floor))
    log_per = np.log(periods)
    # Early-termination scan, mirroring the legacy loop: walk long-ward
    # and stop at the first persistent slope reversal.
    for i in range(max(start, 1), periods.shape[0]):
        scanned += 1
        dp = log_per[i] - log_per[i - 1]
        slope = (log_amp[i] - log_amp[i - 1]) / dp if dp > 0 else 0.0
        if slope >= slope_tolerance:
            run += 1
            if run >= persistence:
                inflection_idx = i - persistence + 1
                break
        else:
            run = 0

    if inflection_idx is not None:
        period = float(periods[inflection_idx])
        found = True
    else:
        period = float(min(fallback_period, periods[-1]))
        found = False
    fpl = 1.0 / period
    return InflectionResult(
        period=period, fpl=fpl, fsl=fsl_ratio * fpl, found=found, scanned=scanned
    )


def corners_from_inflection(result: InflectionResult, base: BandPassSpec) -> BandPassSpec:
    """Definitive band-pass corners: FPL/FSL from the inflection search,
    high-side corners inherited from the default spec (P13's filter)."""
    fsl = result.fsl
    fpl = result.fpl
    # Keep the corners ordered even for degenerate spectra.
    fpl = min(fpl, 0.5 * base.f_pass_high)
    fsl = min(fsl, 0.5 * fpl)
    return base.with_low_corners(fsl, fpl)
