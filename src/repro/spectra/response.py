"""Elastic response spectra (process P16 — the pipeline's hot spot).

A single-degree-of-freedom oscillator with natural period T and
damping ratio zeta obeys ``x'' + 2 zeta w x' + w^2 x = -a_g(t)`` where
``a_g`` is the corrected ground acceleration.  The response spectrum is
the peak response over a grid of (T, zeta) pairs.

Three solvers are provided:

``nigam_jennings``
    Exact for piecewise-linear excitation (Nigam & Jennings, 1969).
    The one-step state transition is computed from the closed-form
    matrix exponential; the two-state recursion is collapsed to a
    second-order scalar difference equation and evaluated with
    ``scipy.signal.lfilter`` (C speed, exact initial conditions) —
    O(D) per oscillator.

``duhamel``
    Direct evaluation of the Duhamel convolution integral — O(D^2)
    per oscillator.  This is the formulation behind the legacy
    Fortran's O(9000 * N * D^2) complexity quoted in the paper (§VI-B)
    and is kept both as a cross-check and so benchmarks can reproduce
    the original cost shape.

``frequency_domain``
    Transfer-function solution via FFT, used as an independent
    cross-check in the test suite.

The paper's oscillator grid (the "9000" in the complexity bound) is
reproduced by :func:`paper_grid`: 1800 log-spaced periods from 0.02 s
to 20 s times 5 damping ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.signal import lfilter

from repro.errors import SignalError

#: Damping ratios (fraction of critical) the observatory reports.
DEFAULT_DAMPINGS: tuple[float, ...] = (0.0, 0.02, 0.05, 0.10, 0.20)


def default_periods(count: int = 100, t_min: float = 0.02, t_max: float = 20.0) -> np.ndarray:
    """Log-spaced oscillator periods spanning the paper's 0.02–20 s band."""
    if count < 2:
        raise SignalError(f"period count must be >= 2, got {count}")
    if not 0 < t_min < t_max:
        raise SignalError(f"need 0 < t_min < t_max, got {t_min}, {t_max}")
    return np.geomspace(t_min, t_max, count)


@dataclass
class ResponseSpectrumConfig:
    """Oscillator grid and solver selection for a response-spectrum run."""

    periods: np.ndarray = field(default_factory=default_periods)
    dampings: tuple[float, ...] = DEFAULT_DAMPINGS
    method: str = "nigam_jennings"
    #: Use pseudo-spectral SV/SA (w*SD, w^2*SD) instead of true peaks.
    pseudo: bool = False

    def __post_init__(self) -> None:
        self.periods = np.asarray(self.periods, dtype=float)
        if self.periods.size == 0 or np.any(self.periods <= 0):
            raise SignalError("periods must be positive and non-empty")
        if any(d < 0 or d >= 1 for d in self.dampings):
            raise SignalError(f"damping ratios must be in [0, 1), got {self.dampings}")
        if self.method not in (
            "auto",
            "nigam_jennings",
            "nigam_jennings_vectorized",
            "duhamel",
            "frequency_domain",
        ):
            raise SignalError(f"unknown response-spectrum method {self.method!r}")

    @property
    def combos(self) -> int:
        """Number of (period, damping) oscillators evaluated."""
        return self.periods.size * len(self.dampings)


def paper_grid() -> ResponseSpectrumConfig:
    """The legacy grid: 1800 periods x 5 dampings = 9000 oscillators."""
    return ResponseSpectrumConfig(periods=default_periods(1800))


@dataclass(frozen=True)
class ResponseSpectrum:
    """Peak SDOF responses over the oscillator grid.

    ``sa``/``sv``/``sd`` have shape (n_dampings, n_periods); SA is the
    peak absolute (total) acceleration in the input units, SV the peak
    relative velocity, SD the peak relative displacement (input units
    times s and s^2 respectively).
    """

    periods: np.ndarray
    dampings: np.ndarray
    sa: np.ndarray
    sv: np.ndarray
    sd: np.ndarray


def sdof_coefficients(
    period: float, damping: float, dt: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact one-step discretization of the SDOF equation.

    Returns ``(A, B0, B1)`` such that the state ``z = (x, v)`` evolves
    as ``z[k+1] = A z[k] + B0 p[k] + B1 p[k+1]`` for piecewise-linear
    forcing ``p = -a_g``:

    - ``A = exp(F dt)`` (closed form for the damped oscillator),
    - ``B0 = (M0 - M1) G`` and ``B1 = M1 G`` with ``M0 = F^-1 (A - I)``
      and ``M1 = M0 - F^-1 A + F^-2 (A - I) / dt``,

    where ``F = [[0, 1], [-w^2, -2 zeta w]]`` and ``G = (0, 1)^T``.
    These are the Nigam–Jennings coefficients in matrix form.
    """
    if period <= 0 or dt <= 0:
        raise SignalError("period and dt must be positive")
    if not 0 <= damping < 1:
        raise SignalError(f"damping ratio must be in [0, 1), got {damping}")
    w = 2.0 * np.pi / period
    wd = w * np.sqrt(1.0 - damping * damping)
    e = np.exp(-damping * w * dt)
    s = np.sin(wd * dt)
    c = np.cos(wd * dt)
    # Closed-form matrix exponential of F over one step.
    a11 = e * (c + damping * w * s / wd)
    a12 = e * s / wd
    a21 = -e * w * w * s / wd
    a22 = e * (c - damping * w * s / wd)
    A = np.array([[a11, a12], [a21, a22]])
    F = np.array([[0.0, 1.0], [-w * w, -2.0 * damping * w]])
    Finv = np.linalg.inv(F)
    eye = np.eye(2)
    M0 = Finv @ (A - eye)
    M1 = M0 - Finv @ A + (Finv @ Finv @ (A - eye)) / dt
    # G = (0, 1)^T, so M G is just the second column of M.
    B0 = (M0 - M1)[:, 1]
    B1 = M1[:, 1]
    return A, B0, B1


def _scalar_recursions(
    A: np.ndarray, B0: np.ndarray, B1: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse the 2-state recursion to two scalar IIR filters.

    Returns ``(den, num_x, num_v)`` where each response series is
    ``lfilter(num, den, p)`` with initial conditions handled by
    :func:`_initial_conditions`.  Derivation: annihilate the companion
    state using the Cayley–Hamilton relation of ``A``.
    """
    tr = A[0, 0] + A[1, 1]
    det = A[0, 0] * A[1, 1] - A[0, 1] * A[1, 0]
    den = np.array([1.0, -tr, det])
    num_x = np.array(
        [
            B1[0],
            B0[0] + A[0, 1] * B1[1] - A[1, 1] * B1[0],
            A[0, 1] * B0[1] - A[1, 1] * B0[0],
        ]
    )
    num_v = np.array(
        [
            B1[1],
            B0[1] + A[1, 0] * B1[0] - A[0, 0] * B1[1],
            A[1, 0] * B0[0] - A[0, 0] * B0[1],
        ]
    )
    return den, num_x, num_v


def _initial_conditions(
    A: np.ndarray, B1: np.ndarray, p0: float
) -> tuple[np.ndarray, np.ndarray]:
    """Direct-form-II-transposed initial states enforcing rest at k=0.

    The scalar recursion sees ``p[k+1]`` through its ``num[0]`` tap, so
    with zero filter history ``lfilter`` would start the oscillator
    moving at k=0.  These zi values subtract the homogeneous evolution
    of the spurious state ``B1 * p[0]``, making the filtered output
    equal the exact at-rest solution (x[0] = v[0] = 0).
    """
    zi_x = p0 * np.array([-B1[0], A[1, 1] * B1[0] - A[0, 1] * B1[1]])
    zi_v = p0 * np.array([-B1[1], A[0, 0] * B1[1] - A[1, 0] * B1[0]])
    return zi_x, zi_v


def sdof_response_history(
    acc: np.ndarray, dt: float, period: float, damping: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Full response histories (x, v, total acceleration) of one oscillator.

    Exact for piecewise-linear ground acceleration; used by tests and
    by callers who need time histories rather than spectra.
    """
    acc = np.asarray(acc, dtype=float)
    if acc.size == 0:
        raise SignalError("cannot compute the response of an empty record")
    p = -acc
    A, B0, B1 = sdof_coefficients(period, damping, dt)
    den, num_x, num_v = _scalar_recursions(A, B0, B1)
    zi_x, zi_v = _initial_conditions(A, B1, p[0])
    x, _ = lfilter(num_x, den, p, zi=zi_x)
    v, _ = lfilter(num_v, den, p, zi=zi_v)
    w = 2.0 * np.pi / period
    # Total acceleration from the equation of motion:
    # x'' + a_g = -2 zeta w v - w^2 x.
    total_acc = -2.0 * damping * w * v - w * w * x
    return x, v, total_acc


def response_spectrum_nigam_jennings(
    acc: np.ndarray, dt: float, config: ResponseSpectrumConfig
) -> ResponseSpectrum:
    """Response spectrum via the Nigam–Jennings recursion (O(D) each)."""
    acc = np.asarray(acc, dtype=float)
    n_d = len(config.dampings)
    n_t = config.periods.size
    sd = np.empty((n_d, n_t))
    sv = np.empty((n_d, n_t))
    sa = np.empty((n_d, n_t))
    for di, zeta in enumerate(config.dampings):
        for ti, period in enumerate(config.periods):
            x, v, ta = sdof_response_history(acc, dt, period, zeta)
            w = 2.0 * np.pi / period
            sd[di, ti] = np.max(np.abs(x))
            if config.pseudo:
                sv[di, ti] = w * sd[di, ti]
                sa[di, ti] = w * w * sd[di, ti]
            else:
                sv[di, ti] = np.max(np.abs(v))
                sa[di, ti] = np.max(np.abs(ta))
    return ResponseSpectrum(
        periods=config.periods.copy(),
        dampings=np.asarray(config.dampings, dtype=float),
        sa=sa,
        sv=sv,
        sd=sd,
    )


def response_spectrum_duhamel(
    acc: np.ndarray, dt: float, config: ResponseSpectrumConfig
) -> ResponseSpectrum:
    """Response spectrum via direct Duhamel convolution (O(D^2) each).

    ``x(t_n) = -(dt / wd) * sum_k a_g(t_k) e^{-z w (t_n - t_k)}
    sin(wd (t_n - t_k))`` — the rectangular-rule convolution the legacy
    Fortran evaluated, retained for its cost shape and as a numerical
    cross-check (it converges to the exact solution as dt -> 0).
    Velocity is obtained with the companion kernel; SA from the
    equation of motion.
    """
    acc = np.asarray(acc, dtype=float)
    if acc.size == 0:
        raise SignalError("cannot compute the response of an empty record")
    n = acc.size
    t = np.arange(n) * dt
    n_d = len(config.dampings)
    n_t = config.periods.size
    sd = np.empty((n_d, n_t))
    sv = np.empty((n_d, n_t))
    sa = np.empty((n_d, n_t))
    for di, zeta in enumerate(config.dampings):
        for ti, period in enumerate(config.periods):
            w = 2.0 * np.pi / period
            wd = w * np.sqrt(1.0 - zeta * zeta)
            decay = np.exp(-zeta * w * t)
            hx = decay * np.sin(wd * t) / wd
            # dx/dt of the displacement kernel.
            hv = decay * (np.cos(wd * t) - zeta * w * np.sin(wd * t) / wd)
            # np.convolve is the direct O(D^2) summation.
            x = -dt * np.convolve(acc, hx)[:n]
            v = -dt * np.convolve(acc, hv)[:n]
            ta = -2.0 * zeta * w * v - w * w * x
            sd[di, ti] = np.max(np.abs(x))
            if config.pseudo:
                sv[di, ti] = w * sd[di, ti]
                sa[di, ti] = w * w * sd[di, ti]
            else:
                sv[di, ti] = np.max(np.abs(v))
                sa[di, ti] = np.max(np.abs(ta))
    return ResponseSpectrum(
        periods=config.periods.copy(),
        dampings=np.asarray(config.dampings, dtype=float),
        sa=sa,
        sv=sv,
        sd=sd,
    )


def response_spectrum_frequency_domain(
    acc: np.ndarray, dt: float, config: ResponseSpectrumConfig
) -> ResponseSpectrum:
    """Response spectrum via the SDOF transfer function and the FFT.

    The record is zero-padded with a quiet tail long enough for the
    slowest oscillator to ring down, avoiding circular-convolution
    wrap-around.
    """
    acc = np.asarray(acc, dtype=float)
    if acc.size == 0:
        raise SignalError("cannot compute the response of an empty record")
    n = acc.size
    max_period = float(np.max(config.periods))
    min_damping = max(min(config.dampings), 0.01)
    # Ring-down to ~0.1% needs ~7 time constants of the lightest mode.
    tail = int(np.ceil(7.0 * max_period / (2.0 * np.pi * min_damping) / dt))
    m = int(2 ** np.ceil(np.log2(n + tail)))
    spec = np.fft.rfft(acc, m)
    freqs = np.fft.rfftfreq(m, dt)
    omega = 2.0 * np.pi * freqs
    n_d = len(config.dampings)
    n_t = config.periods.size
    sd = np.empty((n_d, n_t))
    sv = np.empty((n_d, n_t))
    sa = np.empty((n_d, n_t))
    for di, zeta in enumerate(config.dampings):
        for ti, period in enumerate(config.periods):
            w = 2.0 * np.pi / period
            hx = -1.0 / (w * w - omega * omega + 2j * zeta * w * omega)
            x = np.fft.irfft(spec * hx, m)[:n]
            v = np.fft.irfft(spec * hx * 1j * omega, m)[:n]
            ta = -2.0 * zeta * w * v - w * w * x
            sd[di, ti] = np.max(np.abs(x))
            if config.pseudo:
                sv[di, ti] = w * sd[di, ti]
                sa[di, ti] = w * w * sd[di, ti]
            else:
                sv[di, ti] = np.max(np.abs(v))
                sa[di, ti] = np.max(np.abs(ta))
    return ResponseSpectrum(
        periods=config.periods.copy(),
        dampings=np.asarray(config.dampings, dtype=float),
        sa=sa,
        sv=sv,
        sd=sd,
    )


def response_spectrum_nigam_jennings_vectorized(
    acc: np.ndarray, dt: float, config: ResponseSpectrumConfig
) -> ResponseSpectrum:
    """Nigam–Jennings vectorized across the oscillator axis.

    The per-oscillator solver runs ``lfilter`` over time, once per
    (period, damping) pair — fast when records are long and the grid
    small.  The legacy grid is the opposite shape (9,000 oscillators),
    so this variant flips the vectorization: a single Python loop over
    the D time steps advances *all* oscillators at once with 2x2
    state-update arithmetic on length-K arrays (the guide's
    "vectorize the wide axis" idiom).  Results are identical to the
    per-oscillator path to round-off; :func:`response_spectrum` picks
    whichever axis is wider.
    """
    acc = np.asarray(acc, dtype=float)
    if acc.size == 0:
        raise SignalError("cannot compute the response of an empty record")
    periods = np.repeat(config.periods, 1)
    grid_t = np.tile(config.periods, len(config.dampings))
    grid_z = np.repeat(np.asarray(config.dampings, dtype=float), config.periods.size)
    k = grid_t.size

    # Closed-form per-oscillator coefficients, all vectorized.
    w = 2.0 * np.pi / grid_t
    wd = w * np.sqrt(1.0 - grid_z**2)
    e = np.exp(-grid_z * w * dt)
    s = np.sin(wd * dt)
    c = np.cos(wd * dt)
    a11 = e * (c + grid_z * w * s / wd)
    a12 = e * s / wd
    a21 = -e * w * w * s / wd
    a22 = e * (c - grid_z * w * s / wd)
    # B0/B1 via the exact integrals (same algebra as sdof_coefficients,
    # expanded element-wise).  F = [[0,1],[-w^2,-2 z w]]:
    #   Finv = [[-2 z / w, -1/w^2], [1, 0]]
    f11, f12, f21, f22 = (
        np.zeros(k),
        np.ones(k),
        -(w**2),
        -2.0 * grid_z * w,
    )
    det_f = f11 * f22 - f12 * f21  # = w^2
    i11, i12 = f22 / det_f, -f12 / det_f
    i21, i22 = -f21 / det_f, f11 / det_f
    # M0 = Finv (A - I)
    m0_11 = i11 * (a11 - 1.0) + i12 * a21
    m0_12 = i11 * a12 + i12 * (a22 - 1.0)
    m0_21 = i21 * (a11 - 1.0) + i22 * a21
    m0_22 = i21 * a12 + i22 * (a22 - 1.0)
    # Finv A
    fa_11 = i11 * a11 + i12 * a21
    fa_12 = i11 * a12 + i12 * a22
    fa_21 = i21 * a11 + i22 * a21
    fa_22 = i21 * a12 + i22 * a22
    # Finv^2 (A - I) = Finv M0
    ff_11 = i11 * m0_11 + i12 * m0_21
    ff_12 = i11 * m0_12 + i12 * m0_22
    ff_21 = i21 * m0_11 + i22 * m0_21
    ff_22 = i21 * m0_12 + i22 * m0_22
    m1_11 = m0_11 - fa_11 + ff_11 / dt
    m1_12 = m0_12 - fa_12 + ff_12 / dt
    m1_21 = m0_21 - fa_21 + ff_21 / dt
    m1_22 = m0_22 - fa_22 + ff_22 / dt
    # G = (0, 1): B columns are the second columns of the M matrices.
    b1x, b1v = m1_12, m1_22
    b0x, b0v = m0_12 - m1_12, m0_22 - m1_22

    p = -acc
    x = np.zeros(k)
    v = np.zeros(k)
    max_x = np.zeros(k)
    max_v = np.zeros(k)
    max_ta = np.zeros(k)
    two_zw = 2.0 * grid_z * w
    w2 = w * w
    for n in range(acc.size - 1):
        x, v = (
            a11 * x + a12 * v + b0x * p[n] + b1x * p[n + 1],
            a21 * x + a22 * v + b0v * p[n] + b1v * p[n + 1],
        )
        np.maximum(max_x, np.abs(x), out=max_x)
        np.maximum(max_v, np.abs(v), out=max_v)
        np.maximum(max_ta, np.abs(two_zw * v + w2 * x), out=max_ta)

    n_d = len(config.dampings)
    n_t = config.periods.size
    sd = max_x.reshape(n_d, n_t)
    if config.pseudo:
        w_row = (2.0 * np.pi / periods)[None, :]
        sv = w_row * sd
        sa = w_row**2 * sd
    else:
        sv = max_v.reshape(n_d, n_t)
        sa = max_ta.reshape(n_d, n_t)
    return ResponseSpectrum(
        periods=config.periods.copy(),
        dampings=np.asarray(config.dampings, dtype=float),
        sa=sa,
        sv=sv,
        sd=sd,
    )


_METHODS = {
    "nigam_jennings": response_spectrum_nigam_jennings,
    "nigam_jennings_vectorized": response_spectrum_nigam_jennings_vectorized,
    "duhamel": response_spectrum_duhamel,
    "frequency_domain": response_spectrum_frequency_domain,
}


def response_spectrum(
    acc: np.ndarray, dt: float, config: ResponseSpectrumConfig | None = None
) -> ResponseSpectrum:
    """Compute the response spectrum with the method the config selects.

    ``method="auto"`` picks the Nigam–Jennings vectorization axis by
    the problem's shape: per-oscillator ``lfilter`` when the record is
    the wide dimension, combo-vectorized when the oscillator grid is
    (e.g. the legacy 9,000-combo sweep).  The choice is a pure
    function of (combos, samples), so identical inputs always take the
    same path — a requirement of the pipeline's byte-equality
    guarantees.
    """
    if config is None:
        config = ResponseSpectrumConfig()
    method = config.method
    if method == "auto":
        acc_len = np.asarray(acc).shape[0] if np.asarray(acc).ndim else 0
        method = (
            "nigam_jennings_vectorized"
            if config.combos >= acc_len
            else "nigam_jennings"
        )
    return _METHODS[method](acc, dt, config)
