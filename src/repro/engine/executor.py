"""The DAG execution engine.

One executor runs every scheduling policy: it walks an execution plan
(a list of barrier :class:`~repro.engine.graph.Region` groups over a
:class:`~repro.engine.graph.TaskGraph`), dispatching each region
through the strategy machinery the paper's implementations share:

- ``seq``          — members one at a time on the driver;
- ``tasks``        — members as OpenMP-style tasks + taskwait;
- ``loop``         — the member's data loop via :func:`parallel_for`;
- ``temp_folders`` — concurrent legacy-tool instances staged into
  temporary folders;
- ``custom``       — the member's own callable;
- ``fused``        — mixed members in one dispatch: task members are
  submitted, loop members run on the driver, and a single barrier
  closes the region (the executed form of ``repro-lint``'s "could
  start concurrently" advisories).

Every parallel path collects per-item results in deterministic order
and performs merges after its own process completes, so outputs are
byte-identical across policies and backends.  Spans, metrics, worker
profile shards, and the resilience runtime's retry/quarantine wrappers
thread through exactly as they did in the per-implementation
executors this module replaces.
"""

from __future__ import annotations

import logging
import time
from contextlib import ExitStack
from functools import partial

from repro.core.artifacts import (
    FILTER_CORRECTED,
    FILTER_PARAMS,
    MAXVALS,
    MAXVALS2,
)
from repro.core.auditing import unit_scope
from repro.core.context import RunContext
from repro.core.processes.common import merge_max_files
from repro.core.processes.p03_separate import separate_station, stations_from_list
from repro.core.processes.p16_response import response_for_trace, trace_pairs
from repro.core.processes.p19_gem import interleaved_files, set_data_apart
from repro.core.registry import PROCESSES
from repro.core.runner import PipelineImplementation, PipelineResult, ProcessTiming
from repro.core.tempfolders import STAGE_PROCESS, StagedInstance, run_staged_instance
from repro.engine.graph import (
    CUSTOM,
    FUSED,
    LOOP,
    SEQ,
    TASK,
    TEMP_FOLDERS,
    Region,
    Task,
    TaskGraph,
)
from repro.errors import PipelineError
from repro.formats.common import COMPONENTS
from repro.formats.fourier import component_f_name
from repro.formats.v1 import component_v1_name
from repro.formats.v2 import component_v2_name
from repro.observability.events import emit as emit_event
from repro.observability.events import is_active as events_active
from repro.observability.events import stage_scope
from repro.observability.tracer import maybe_span
from repro.parallel.omp import TaskGroup, parallel_for, shared_executor

logger = logging.getLogger("repro.engine")
# Per-process completion lines stay on the core logger: operators (and
# the logging tests) filter on "repro.core" regardless of executor.
core_logger = logging.getLogger("repro.core")


def _resilience(ctx: RunContext):
    """The resilience runtime active for this run's workspace, if any."""
    from repro.resilience.runtime import active_runtime

    return active_runtime(ctx.workspace.root)


def _timed(pid: int, ctx: RunContext, **kwargs: object) -> tuple[int, float]:
    """Run one registry process, returning (pid, elapsed)."""
    spec = PROCESSES[pid]
    start = time.perf_counter()
    spec.run(ctx, **kwargs)  # type: ignore[call-arg]
    return pid, time.perf_counter() - start


def _response_unit(workspace_root: str, config: object, pair: tuple[str, str]) -> str:
    """Picklable body for the response-spectrum loop (P16)."""
    v2_name, r_name = pair
    return response_for_trace(workspace_root, v2_name, r_name, config)  # type: ignore[arg-type]


def _gem_unit(workspace_root: str, item: tuple[str, bool]) -> list[str]:
    """Picklable body for the GEM-export loop (P19)."""
    file_name, is_response = item
    return set_data_apart(workspace_root, file_name, is_response)


def correction_instance(
    stage: str, index: int, station: str, params_name: str
) -> StagedInstance:
    """Staging description for one correction-tool instance (P4/P13)."""
    inputs = [params_name] + [component_v1_name(station, c) for c in COMPONENTS]
    outputs = [component_v2_name(station, c) for c in COMPONENTS] + [
        f"{station}{c}.max" for c in COMPONENTS
    ]
    return StagedInstance(
        stage=stage,
        index=index,
        tool="correction",
        inputs=tuple(inputs),
        outputs=tuple(outputs),
        config=(
            ("params", params_name),
            ("process", STAGE_PROCESS.get(stage.upper(), "P4")),
        ),
        unit=station,
    )


def fourier_instance(stage: str, index: int, station: str, ctx: RunContext) -> StagedInstance:
    """Staging description for one Fourier-tool instance (P7)."""
    inputs = [component_v2_name(station, c) for c in COMPONENTS]
    outputs = [component_f_name(station, c) for c in COMPONENTS]
    return StagedInstance(
        stage=stage,
        index=index,
        tool="fourier",
        inputs=tuple(inputs),
        outputs=tuple(outputs),
        config=(
            ("taper", str(ctx.taper_fraction)),
            ("maxperiod", str(ctx.fourier_max_period)),
            ("process", STAGE_PROCESS.get(stage.upper(), "P7")),
        ),
        unit=station,
    )


class Engine:
    """Executes one policy's plan against a run context.

    The engine owns per-run state only (the shared worker pools); the
    policy owns the schedule.  :class:`EnginePipeline` adapts a policy
    to the :class:`PipelineImplementation` interface so every existing
    tool (tracer, profiler, perf gate, chaos soak) drives engine runs
    unchanged.
    """

    def __init__(self, policy, *, verify: bool = False) -> None:
        self.policy = policy
        self.name = policy.name
        self.verify = verify

    # -- plan execution ----------------------------------------------------

    def execute(self, ctx: RunContext, result: PipelineResult) -> None:
        graph, regions = self.policy.plan(ctx)
        graph.validate_regions(regions)
        if self.verify:
            self._verify_plan(graph, regions)
        self._record_plan(ctx, regions)
        self._emit_plan(ctx, regions)
        needs_pools = any(
            task.strategy in (LOOP, TEMP_FOLDERS)
            for region in regions
            for task in region.tasks
        )
        with ExitStack() as stack:
            pools: dict = {}
            if needs_pools:
                # One pool per backend, shared by every loop of the
                # run: pool creation (and, for the process backend,
                # worker forking) is not paid per region.
                pools = {
                    backend: stack.enter_context(
                        shared_executor(backend, ctx.parallel.workers)
                    )
                    for backend in {ctx.parallel.loop_backend, ctx.parallel.tool_backend}
                }
            for region in regions:
                self._run_region(ctx, result, region, pools)
        # The temp-folder parent is scratch space; leave the workspace
        # with the same inventory a sequential run produces.
        tmp = ctx.workspace.tmp_dir
        if tmp.exists() and not any(tmp.iterdir()):
            tmp.rmdir()

    def _verify_plan(self, graph: TaskGraph, regions: list[Region]) -> None:
        """Run the graph verifier; errors refuse execution."""
        from repro.analysis.graphlint import verify_graph
        from repro.analysis.model import ERROR
        from repro.errors import VerificationError

        errors = [f for f in verify_graph(graph, regions) if f.severity == ERROR]
        if errors:
            details = "\n".join(f"  - {f.render()}" for f in errors)
            raise VerificationError(
                f"policy {self.name!r} failed graph verification "
                f"({len(errors)} error(s)):\n{details}"
            )

    def _record_plan(self, ctx: RunContext, regions: list[Region]) -> None:
        """Persist the executed plan for the happens-before cross-check."""
        from repro.core.auditing import is_active, record_plan

        if not is_active(ctx.workspace.root):
            return
        record_plan(ctx.workspace.root, {
            "policy": self.name,
            "regions": [
                {"label": region.label, "tasks": [t.name for t in region.tasks]}
                for region in regions
            ],
        })

    def _emit_plan(self, ctx: RunContext, regions: list[Region]) -> None:
        """Publish the barrier plan to the event bus, so a live monitor
        knows every stage (and its task count) before any has run."""
        if not events_active(ctx.workspace.root):
            return
        emit_event(ctx.workspace.root, "plan", policy=self.name, regions=[
            {
                "label": region.label,
                "strategy": region.strategy,
                "tasks": [t.name for t in region.tasks],
            }
            for region in regions
        ])

    def _run_region(
        self, ctx: RunContext, result: PipelineResult, region: Region, pools: dict
    ) -> None:
        strategy = region.strategy
        span_strategy = strategy
        if strategy == CUSTOM and len(region.tasks) == 1:
            span_strategy = region.tasks[0].span_strategy or CUSTOM
        live = events_active(ctx.workspace.root)
        if live:
            emit_event(
                ctx.workspace.root, "stage_started", stage=region.label,
                strategy=span_strategy, implementation=self.name,
            )
        with maybe_span(
            ctx.tracer, region.label, kind="stage", stage=region.label,
            strategy=span_strategy, implementation=self.name,
        ) as stage_span, stage_scope(region.label):
            start = time.perf_counter()
            self._dispatch(ctx, result, region, pools)
            elapsed = time.perf_counter() - start
        # When tracing, the stage clock *is* the stage span, so the
        # trace and the result cannot disagree.
        result.stage_durations[region.label] = (
            stage_span.duration_s if stage_span is not None else elapsed
        )
        if live:
            emit_event(
                ctx.workspace.root, "stage_finished", stage=region.label,
                duration_s=result.stage_durations[region.label],
            )
        logger.debug(
            "region %s (%s) finished in %.4f s",
            region.label, strategy, result.stage_durations[region.label],
        )

    def _dispatch(
        self, ctx: RunContext, result: PipelineResult, region: Region, pools: dict
    ) -> None:
        if region.strategy == SEQ:
            self._region_seq(ctx, result, region)
        elif region.strategy == "tasks":
            self._region_tasks(ctx, result, region)
        elif region.strategy == LOOP:
            (task,) = region.tasks
            self._loop_member(ctx, result, region, task.pid, pools)
        elif region.strategy == TEMP_FOLDERS:
            (task,) = region.tasks
            self._temp_folder_member(ctx, result, region, task.pid, pools)
        elif region.strategy == CUSTOM:
            self._region_custom(ctx, result, region)
        elif region.strategy == FUSED:
            self._region_fused(ctx, result, region, pools)
        else:
            raise PipelineError(f"unknown region strategy {region.strategy!r}")

    def _record(
        self, result: PipelineResult, region: Region, pid: int, duration: float,
        ctx: RunContext | None = None,
    ) -> None:
        spec = PROCESSES[pid]
        result.processes.append(
            ProcessTiming(
                pid=pid, name=spec.name, stage=region.label, duration_s=duration,
            )
        )
        core_logger.debug(
            "%s (%s) finished in %.4f s", spec.label, spec.name, duration
        )
        if ctx is not None and events_active(ctx.workspace.root):
            emit_event(
                ctx.workspace.root, "process_finished", process=spec.label,
                name=spec.name, stage=region.label, duration_s=duration,
            )
        if ctx is not None and ctx.metrics is not None:
            from repro.observability.metrics import record_process

            record_process(pid, duration)

    # -- seq ---------------------------------------------------------------

    def _region_seq(self, ctx: RunContext, result: PipelineResult, region: Region) -> None:
        for task in region.tasks:
            with maybe_span(
                ctx.tracer, PROCESSES[task.pid].name, kind="process",
                pid=task.pid, stage=region.label,
            ):
                _, elapsed = _timed(task.pid, ctx)
            self._record(result, region, task.pid, elapsed, ctx=ctx)

    # -- tasks -------------------------------------------------------------

    def _region_tasks(self, ctx: RunContext, result: PipelineResult, region: Region) -> None:
        # The paper binds 2-4 processors for the lightweight task
        # stages; we cap at the number of member processes.
        workers = min(ctx.parallel.workers, len(region.tasks))
        with TaskGroup(
            backend=ctx.parallel.task_backend, num_workers=workers,
            tracer=ctx.tracer, metrics=ctx.metrics,
        ) as tg:
            for task in region.tasks:
                tg.task(_timed, task.pid, ctx, span_name=PROCESSES[task.pid].name)
        for pid, elapsed in tg.results:
            self._record(result, region, pid, elapsed, ctx=ctx)

    # -- custom ------------------------------------------------------------

    def _region_custom(self, ctx: RunContext, result: PipelineResult, region: Region) -> None:
        for task in region.tasks:
            task.run(ctx, result)  # type: ignore[misc]

    # -- fused -------------------------------------------------------------

    def _region_fused(
        self, ctx: RunContext, result: PipelineResult, region: Region, pools: dict
    ) -> None:
        """One dispatch for a mixed region: submit the task members,
        drive the loop members from this thread, barrier once at the
        end.  Correct because region members are proven independent."""
        simple = [t for t in region.tasks if t.strategy in (SEQ, TASK)]
        loops = [t for t in region.tasks if t.strategy in (LOOP, TEMP_FOLDERS)]
        custom = [t for t in region.tasks if t.strategy == CUSTOM]
        workers = min(ctx.parallel.workers, max(1, len(simple)))
        with TaskGroup(
            backend=ctx.parallel.task_backend, num_workers=workers,
            tracer=ctx.tracer, metrics=ctx.metrics,
        ) as tg:
            for task in simple:
                tg.task(_timed, task.pid, ctx, span_name=PROCESSES[task.pid].name)
            for task in loops:
                if task.strategy == LOOP:
                    self._loop_member(ctx, result, region, task.pid, pools)
                else:
                    self._temp_folder_member(ctx, result, region, task.pid, pools)
            for task in custom:
                task.run(ctx, result)  # type: ignore[misc]
        for pid, elapsed in tg.results:
            self._record(result, region, pid, elapsed, ctx=ctx)

    # -- loops -------------------------------------------------------------

    def _loop_member(
        self, ctx: RunContext, result: PipelineResult, region: Region, pid: int,
        pools: dict,
    ) -> None:
        start = time.perf_counter()
        # The driver-side reads (work lists, metadata) belong to the
        # loop's process too; worker threads start scope-free and take
        # the loop body's per-unit attribution instead.
        with maybe_span(
            ctx.tracer, PROCESSES[pid].name, kind="process", pid=pid, stage=region.label,
        ), unit_scope(f"P{pid}"):
            if pid == 3:
                stations = stations_from_list(ctx.workspace)
                runtime = _resilience(ctx)
                isolate = runtime.isolation("P3") if runtime is not None else None
                parallel_for(
                    partial(separate_station, str(ctx.workspace.root)),
                    stations,
                    backend=ctx.parallel.loop_backend,
                    num_workers=ctx.parallel.workers,
                    executor=pools.get(ctx.parallel.loop_backend),
                    tracer=ctx.tracer,
                    span="separate_station",
                    metrics=ctx.metrics,
                    isolate=isolate,
                )
                if isolate is not None and isolate.reports:
                    runtime.quarantine_reports(isolate.reports, tracer=ctx.tracer)
            elif pid == 10:
                PROCESSES[10].run(ctx, parallel_inner=True)  # type: ignore[call-arg]
            elif pid == 16:
                pairs = trace_pairs(ctx)
                body = partial(_response_unit, str(ctx.workspace.root), ctx.response_config)
                parallel_for(
                    body,
                    pairs,
                    backend=ctx.parallel.loop_backend,
                    num_workers=ctx.parallel.workers,
                    executor=pools.get(ctx.parallel.loop_backend),
                    tracer=ctx.tracer,
                    span="response_trace",
                    metrics=ctx.metrics,
                )
            elif pid == 19:
                files = interleaved_files(ctx)
                body = partial(_gem_unit, str(ctx.workspace.root))
                parallel_for(
                    body,
                    files,
                    backend=ctx.parallel.loop_backend,
                    num_workers=ctx.parallel.workers,
                    executor=pools.get(ctx.parallel.loop_backend),
                    tracer=ctx.tracer,
                    span="gem_export",
                    metrics=ctx.metrics,
                )
            else:
                raise PipelineError(f"no loop strategy defined for P{pid}")
        self._record(result, region, pid, time.perf_counter() - start, ctx=ctx)

    # -- temp folders ------------------------------------------------------

    def _temp_folder_member(
        self, ctx: RunContext, result: PipelineResult, region: Region, pid: int,
        pools: dict,
    ) -> None:
        start = time.perf_counter()
        # Deliberately unscoped: the work-list read is orchestration (it
        # sizes the loop), not part of P4/P7/P13's declared access sets.
        stations = stations_from_list(ctx.workspace)
        # Temp-folder staging keys off the process's Fig. 9 stage name
        # so fused regions stage into the same folders a faithful run
        # uses.
        stage_name = _temp_folder_stage(pid)
        if pid in (4, 13):
            params_name = FILTER_PARAMS if pid == 4 else FILTER_CORRECTED
            maxvals_name = MAXVALS if pid == 4 else MAXVALS2
            instances = [
                correction_instance(stage_name, i, station, params_name)
                for i, station in enumerate(stations)
            ]
        elif pid == 7:
            instances = [
                fourier_instance(stage_name, i, station, ctx)
                for i, station in enumerate(stations)
            ]
            maxvals_name = None
        else:
            raise PipelineError(f"no temp-folder strategy defined for P{pid}")
        with maybe_span(
            ctx.tracer, PROCESSES[pid].name, kind="process", pid=pid, stage=region.label,
        ), unit_scope(f"P{pid}"):
            values = parallel_for(
                partial(run_staged_instance, str(ctx.workspace.root)),
                instances,
                backend=ctx.parallel.tool_backend,
                num_workers=ctx.parallel.workers,
                executor=pools.get(ctx.parallel.tool_backend),
                tracer=ctx.tracer,
                span="staged_instance",
                metrics=ctx.metrics,
            )
            runtime = _resilience(ctx)
            if runtime is not None:
                reports = [r for value in values if value for r in value]
                if reports:
                    # Quarantine (and purge) before the merge so the
                    # maxvals files only aggregate surviving stations.
                    runtime.quarantine_reports(reports, tracer=ctx.tracer)
            if maxvals_name is not None:
                merge_max_files(ctx.workspace.work_dir, maxvals_name)
        self._record(result, region, pid, time.perf_counter() - start, ctx=ctx)


def _temp_folder_stage(pid: int) -> str:
    """Fig. 9 stage name of a temp-folder process (staging folder key)."""
    from repro.core.stages import stage_of_process

    return stage_of_process(pid).name


class EnginePipeline(PipelineImplementation):
    """A scheduling policy adapted to the implementation interface.

    This is the execution front door the redesigned API hands out: the
    shared :meth:`~repro.core.runner.PipelineImplementation.run`
    wrapper (auditing, resilience runtime, tracer/profiler sessions,
    metrics) drives the engine exactly as it drove the legacy
    implementation classes.
    """

    def __init__(self, policy, *, verify: bool = False) -> None:
        self.policy = policy
        self.name = policy.name
        self.description = policy.description
        self.verify = verify

    def execute(self, ctx: RunContext, result: PipelineResult) -> None:
        Engine(self.policy, verify=self.verify).execute(ctx, result)


def run_graph(
    graph_or_builder, ctx: RunContext, *, name: str | None = None,
    verify: bool = False,
) -> PipelineResult:
    """Execute a user-built graph (or builder) end-to-end.

    Convenience for ad-hoc pipelines::

        builder = PipelineBuilder(name="qc-only")
        builder.add_processes([0, 1, 2, 3], strategy="seq")
        result = run_graph(builder, ctx)

    With ``verify=True`` the plan is run through the graph verifier
    first; error findings raise
    :class:`~repro.errors.VerificationError` instead of executing.
    """
    from repro.engine.policy import GraphPolicy

    return EnginePipeline(
        GraphPolicy(graph_or_builder, name=name), verify=verify
    ).run(ctx)
