"""The DAG-native execution engine.

One engine executes every scheduling scheme.  A pipeline is composed
as a :class:`PipelineBuilder` graph (process tasks wire themselves
from the registry's declared reads/writes; custom tasks wire
explicitly), laid out between barriers by a :class:`SchedulingPolicy`,
and executed by the :class:`Engine` with the platform threaded
through — tracer spans, metrics shards, resilience retry/quarantine,
and the thread/process backends.

    import repro
    from repro.engine import PipelineBuilder

    builder = PipelineBuilder(name="qc-only")
    builder.add_processes([0, 1, 2, 3], strategy="seq")
    result = repro.run("workspace", policy=builder)

The paper's four schemes are the built-in policies ``seq-original``,
``seq-optimized``, ``partial-parallel`` and ``full-parallel``;
``full-parallel-fused`` additionally executes the ``repro-lint``
fusion advisories, and ``dag-parallel`` runs the layering derived
straight from the declarations.
"""

from repro.engine.graph import (
    CUSTOM,
    FUSED,
    LOOP,
    SEQ,
    TASK,
    TEMP_FOLDERS,
    PipelineBuilder,
    Region,
    Task,
    TaskGraph,
)
from repro.engine.executor import Engine, EnginePipeline, run_graph
from repro.engine.policy import (
    POLICIES,
    ClusterPolicy,
    DerivedPolicy,
    GraphPolicy,
    LegacyPolicy,
    SchedulingPolicy,
    SequentialPolicy,
    StagedPolicy,
    pipeline_factory,
    policy_by_name,
    policy_names,
    register_policy,
    resolve_policy,
)

__all__ = [
    "SEQ",
    "TASK",
    "LOOP",
    "TEMP_FOLDERS",
    "CUSTOM",
    "FUSED",
    "Task",
    "Region",
    "TaskGraph",
    "PipelineBuilder",
    "Engine",
    "EnginePipeline",
    "run_graph",
    "SchedulingPolicy",
    "SequentialPolicy",
    "StagedPolicy",
    "DerivedPolicy",
    "ClusterPolicy",
    "GraphPolicy",
    "LegacyPolicy",
    "POLICIES",
    "pipeline_factory",
    "policy_by_name",
    "policy_names",
    "register_policy",
    "resolve_policy",
]
