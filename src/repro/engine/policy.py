"""Scheduling policies: the paper's schemes as plans over one engine.

A :class:`SchedulingPolicy` owns exactly one decision — *which tasks
run between which barriers, with which per-task strategy* — expressed
as a :class:`~repro.engine.graph.TaskGraph` plus an ordered list of
:class:`~repro.engine.graph.Region` barrier groups.  The engine
executes any valid plan, so the paper's four schemes reduce to four
small policy objects:

==================  ==================================================
``seq-original``    every process its own barrier, numeric order
``seq-optimized``   the 17-process order, redundancies removed
``partial-parallel``  Fig. 9 stages, 5 of 11 parallel
``full-parallel``   Fig. 9 stages, 10 of 11 parallel
``cluster-parallel``  prologue / SPMD ranks / epilogue
==================  ==================================================

Beyond the paper, ``full-parallel-fused`` executes the ``repro-lint``
fusion advisories (adjacent stages with no crossing dependency edge
merge into one barrier group), and ``dag-parallel`` drops the Fig. 9
layering entirely, running the layering derived from the registry
declarations — as many barriers as the I/O requires, none extra.

Every plan is validated against the derived dependency graph before
execution: a policy cannot ship a schedule the declarations forbid.
"""

from __future__ import annotations

import difflib
from functools import partial
from typing import Callable, Iterable, Sequence

from repro.core.registry import OPTIMIZED_ORDER, ORIGINAL_ORDER
from repro.core.stages import (
    FULL_PARALLEL_STAGES,
    PARTIAL_PARALLEL_STAGES,
    STAGES,
    TASKS,
)
from repro.engine.graph import (
    CUSTOM,
    LOOP,
    SEQ,
    TASK,
    TEMP_FOLDERS,
    PipelineBuilder,
    Region,
    TaskGraph,
)
from repro.errors import PipelineError

#: Stage-level strategy -> per-task strategy of its members.
_MEMBER_STRATEGY = {
    "seq": SEQ,
    "tasks": TASK,
    "loop": LOOP,
    "temp_folders": TEMP_FOLDERS,
}


class SchedulingPolicy:
    """How a pipeline's task graph is laid out between barriers.

    Subclasses implement :meth:`plan`; :meth:`pipeline` adapts the
    policy to the implementation interface so it can be run, traced,
    profiled and benchmarked like any legacy implementation.
    """

    name: str = ""
    description: str = ""

    def plan(self, ctx) -> tuple[TaskGraph, list[Region]]:
        """The (graph, barrier regions) pair the engine executes."""
        raise NotImplementedError

    def pipeline(self):
        """An executable :class:`~repro.core.runner.PipelineImplementation`."""
        from repro.engine.executor import EnginePipeline

        return EnginePipeline(self)

    def run(self, ctx):
        """Convenience: execute this policy end-to-end."""
        return self.pipeline().run(ctx)


class SequentialPolicy(SchedulingPolicy):
    """A fixed linear order: every process is its own barrier region.

    The plan is still validated against the derived dependency graph,
    so an order that violates the declarations is rejected before
    anything runs.
    """

    def __init__(
        self, order: Sequence[int], *, name: str, description: str = ""
    ) -> None:
        self.order = tuple(order)
        self.name = name
        self.description = description

    def plan(self, ctx) -> tuple[TaskGraph, list[Region]]:
        builder = PipelineBuilder(name=self.name)
        tasks = builder.add_processes(self.order, strategy=SEQ)
        graph = builder.build()
        regions = [
            Region(label=task.name, tasks=(task,), strategy=SEQ) for task in tasks
        ]
        return graph, regions


class StagedPolicy(SchedulingPolicy):
    """The Fig. 9 eleven-stage plan with per-stage strategies.

    ``strategies`` maps stage name to its strategy (missing stages run
    ``seq``) — the same shape the legacy staged implementations used.
    With ``fuse=True``, adjacent stages joined by no dependency edge
    merge into single barrier groups: the executed form of the
    ``repro-lint`` schedule advisories (II+III, VI+VII, X+XI on the
    optimized pipeline).
    """

    def __init__(
        self,
        *,
        name: str,
        description: str = "",
        strategies: dict[str, str] | None = None,
        fuse: bool = False,
    ) -> None:
        self.name = name
        self.description = description
        self.strategies = dict(strategies or {})
        self.fuse = fuse

    def plan(self, ctx) -> tuple[TaskGraph, list[Region]]:
        builder = PipelineBuilder(name=self.name)
        regions: list[Region] = []
        for stage in STAGES:
            strategy = self.strategies.get(stage.name, SEQ)
            member = _MEMBER_STRATEGY.get(strategy)
            if member is None:
                raise PipelineError(
                    f"unknown stage strategy {strategy!r} for stage {stage.name}"
                )
            members = tuple(
                builder.add_process(pid, strategy=member) for pid in stage.processes
            )
            regions.append(Region(label=stage.name, tasks=members, strategy=strategy))
        graph = builder.build()
        if self.fuse:
            regions = graph.fuse_regions(regions)
        return graph, regions


class DerivedPolicy(SchedulingPolicy):
    """The schedule the declarations imply — no hand-written layering.

    Regions are the dependency graph's topological generations
    (``G1``..``Gn``): as many barriers as the registry's read/write
    declarations require, none that they don't.  Per-process strategies
    are inherited from the fully-parallel scheme so loops and
    temp-folder stages keep their inner parallelism; mixed generations
    execute as fused dispatches.
    """

    def __init__(
        self,
        order: Sequence[int] = OPTIMIZED_ORDER,
        *,
        name: str = "dag-parallel",
        description: str = "DAG-derived: barriers straight from the declarations",
    ) -> None:
        self.order = tuple(order)
        self.name = name
        self.description = description

    def plan(self, ctx) -> tuple[TaskGraph, list[Region]]:
        strategy_of = {
            pid: _MEMBER_STRATEGY[stage.full_strategy]
            for stage in STAGES
            for pid in stage.processes
        }
        builder = PipelineBuilder(name=self.name)
        for pid in self.order:
            builder.add_process(pid, strategy=strategy_of.get(pid, SEQ))
        graph = builder.build()
        return graph, graph.derive_regions()


class ClusterPolicy(SchedulingPolicy):
    """Prologue / SPMD ranks / epilogue as three custom tasks.

    The rank fan-out is one custom task wrapping
    :func:`repro.parallel.cluster.run_cluster`; the deterministic
    epilogue merges the gathered corner specs and maxvals shards.
    """

    name = "cluster-parallel"
    description = "Cluster: MPI-style ranks over a shared workspace"

    def __init__(self, n_ranks: int | None = None, *, name: str | None = None,
                 description: str | None = None) -> None:
        self.n_ranks = n_ranks
        if name is not None:
            self.name = name
        if description is not None:
            self.description = description

    def plan(self, ctx) -> tuple[TaskGraph, list[Region]]:
        state: dict = {}
        builder = PipelineBuilder(name=self.name)
        # Effects are declared so the graph verifier can prove the
        # three-region plan: prologue and epilogue bodies are
        # cross-checked by inference, the rank fan-out is opaque (its
        # work happens in forked rank processes).
        builder.add_task(
            "prologue", self._prologue, span_strategy="seq",
            reads=("raw_v1", "v1_list"),
            writes=(
                "flags", "v1_list", "filter_params", "acc_meta",
                "fourier_meta", "response_meta", "fouriergraph_meta",
                "responsegraph_meta", "flags2",
            ),
        )
        builder.add_task(
            "ranks", partial(self._ranks, state), after=["prologue"],
            span_strategy="cluster",
            reads=("v1_list", "raw_v1", "filter_params", "comp_v1", "comp_v2", "comp_f"),
            writes=("comp_v1", "comp_v2", "comp_f"),
            opaque=True,
        )
        builder.add_task(
            "epilogue", partial(self._epilogue, state), after=["ranks"],
            span_strategy="seq",
            writes=("filter_corrected", "maxvals", "maxvals2"),
        )
        graph = builder.build()
        regions = [
            Region(label=name, tasks=(graph.task(name),), strategy=CUSTOM)
            for name in ("prologue", "ranks", "epilogue")
        ]
        return graph, regions

    @staticmethod
    def _prologue(ctx, result) -> None:
        # Coordinator prologue (stages I, II, VII), sequential: these
        # are milliseconds and must complete before ranks start.
        from repro.core.processes.p00_flags import run_p00
        from repro.core.processes.p01_gather import run_p01
        from repro.core.processes.p02_params import run_p02
        from repro.core.processes.p05_metadata import run_p05
        from repro.core.processes.p08_fourier_meta import run_p08
        from repro.core.processes.p11_flags2 import run_p11
        from repro.core.processes.p17_response_meta import run_p17

        run_p00(ctx)
        run_p01(ctx)
        run_p02(ctx)
        run_p05(ctx)
        run_p08(ctx)
        run_p17(ctx)
        run_p11(ctx)

    def _ranks(self, state: dict, ctx, result) -> None:
        from repro.core.cluster_impl import _cluster_rank_body
        from repro.core.processes.p03_separate import stations_from_list
        from repro.parallel.cluster import run_cluster

        stations = stations_from_list(ctx.workspace)
        ranks = self.n_ranks if self.n_ranks is not None else ctx.parallel.workers
        ranks = max(1, min(ranks, len(stations)))
        per_rank = run_cluster(_cluster_rank_body, ranks, ctx, tracer=ctx.tracer)
        state["ranks"] = ranks
        state["specs"] = per_rank[0]

    @staticmethod
    def _epilogue(state: dict, ctx, result) -> None:
        from repro.core.artifacts import FILTER_CORRECTED, MAXVALS, MAXVALS2
        from repro.core.runner import ProcessTiming
        from repro.core.wavefront import _merge_suffixed
        from repro.formats.params import FilterParams, write_filter_params

        params = FilterParams(default=ctx.default_filter)
        for station, comp, spec in state["specs"]:
            params.set_override(station, comp, spec)
        write_filter_params(ctx.workspace.work(FILTER_CORRECTED), params)
        _merge_suffixed(ctx.workspace, "max1", MAXVALS)
        _merge_suffixed(ctx.workspace, "max2", MAXVALS2)
        tmp = ctx.workspace.tmp_dir
        if tmp.exists() and not any(tmp.iterdir()):
            tmp.rmdir()
        # The ranks stage is the run's one unit of process work; its
        # barrier duration was recorded when the ranks region closed.
        result.processes.append(
            ProcessTiming(
                pid=-1,
                name=f"{state['ranks']}-rank station pipelines",
                stage="ranks",
                duration_s=result.stage_durations["ranks"],
            )
        )


class GraphPolicy(SchedulingPolicy):
    """A user-built graph (or builder), scheduled by its derived layers."""

    def __init__(self, graph_or_builder, *, name: str | None = None) -> None:
        if isinstance(graph_or_builder, PipelineBuilder):
            self._graph = graph_or_builder.build()
            self.name = name or graph_or_builder.name
        elif isinstance(graph_or_builder, TaskGraph):
            self._graph = graph_or_builder
            self.name = name or "custom"
        else:
            raise PipelineError(
                "GraphPolicy expects a PipelineBuilder or TaskGraph, "
                f"got {type(graph_or_builder).__name__}"
            )
        self.description = f"User-built graph ({len(self._graph)} tasks)"

    def plan(self, ctx) -> tuple[TaskGraph, list[Region]]:
        return self._graph, self._graph.derive_regions()


class LegacyPolicy(SchedulingPolicy):
    """Adapter for implementations not yet expressed as task graphs.

    The wavefront and incremental runners schedule work dynamically
    (per-station pipelines, change detection) rather than as a static
    barrier plan; this policy hands execution straight to the legacy
    class so they still resolve through the one policy registry.
    """

    def __init__(self, impl_factory: Callable, name: str, description: str) -> None:
        self._impl_factory = impl_factory
        self.name = name
        self.description = description

    def plan(self, ctx) -> tuple[TaskGraph, list[Region]]:
        raise PipelineError(
            f"policy {self.name!r} schedules dynamically and does not expose "
            "a static task graph"
        )

    def pipeline(self):
        return self._impl_factory()


# -- registry ---------------------------------------------------------------


def _wavefront():
    from repro.core.wavefront import WavefrontParallel

    return WavefrontParallel()


def _incremental():
    from repro.core.incremental import IncrementalRunner

    return IncrementalRunner()


def _partial_strategies() -> dict[str, str]:
    return {
        stage.name: stage.partial_strategy
        for stage in STAGES
        if stage.name in PARTIAL_PARALLEL_STAGES
        and stage.partial_strategy in (TASKS, LOOP)
    }


def _full_strategies() -> dict[str, str]:
    return {
        stage.name: stage.full_strategy
        for stage in STAGES
        if stage.name in FULL_PARALLEL_STAGES
    }


#: Policy name -> zero-argument factory.  Extend with
#: :func:`register_policy`.
POLICIES: dict[str, Callable[[], SchedulingPolicy]] = {
    "seq-original": lambda: SequentialPolicy(
        ORIGINAL_ORDER,
        name="seq-original",
        description="Sequential Original: 20 processes in numeric order",
    ),
    "seq-optimized": lambda: SequentialPolicy(
        OPTIMIZED_ORDER,
        name="seq-optimized",
        description="Sequential Optimized: 17 processes, redundancies removed",
    ),
    "partial-parallel": lambda: StagedPolicy(
        name="partial-parallel",
        description="Partially Parallelized: stages I, II, VI, X, XI parallel",
        strategies=_partial_strategies(),
    ),
    "full-parallel": lambda: StagedPolicy(
        name="full-parallel",
        description="Fully Parallelized: all stages except VII parallel",
        strategies=_full_strategies(),
    ),
    "full-parallel-fused": lambda: StagedPolicy(
        name="full-parallel-fused",
        description="Fully Parallelized + fusion: advisory stages merged "
        "into single barrier groups",
        strategies=_full_strategies(),
        fuse=True,
    ),
    "dag-parallel": lambda: DerivedPolicy(),
    "cluster-parallel": lambda: ClusterPolicy(),
    "wavefront-parallel": lambda: LegacyPolicy(
        _wavefront,
        "wavefront-parallel",
        "Wavefront: per-station pipelines, no stage barriers (§VIII)",
    ),
    "incremental": lambda: LegacyPolicy(
        _incremental,
        "incremental",
        "Incremental: skip processes whose inputs/outputs are unchanged",
    ),
}


def register_policy(name: str, factory: Callable[[], SchedulingPolicy]) -> None:
    """Add (or replace) a named policy in the registry."""
    POLICIES[str(name)] = factory


def policy_names() -> tuple[str, ...]:
    """All registered policy names, in registration order."""
    return tuple(POLICIES)


def _unknown_name_error(kind: str, name: str, known: Iterable[str]) -> ValueError:
    known = list(known)
    message = f"unknown {kind} {name!r}; known: {known}"
    close = difflib.get_close_matches(name, known, n=1)
    if close:
        message += f" (did you mean {close[0]!r}?)"
    return ValueError(message)


def policy_by_name(name: str) -> SchedulingPolicy:
    """Look up a scheduling policy by name.

    Raises :class:`ValueError` naming every registered policy (and the
    closest match) instead of a bare ``KeyError``.
    """
    factory = POLICIES.get(str(name))
    if factory is None:
        raise _unknown_name_error("policy", str(name), POLICIES)
    return factory()


def pipeline_factory(name: str) -> Callable:
    """A zero-argument factory of executable pipelines for ``name``.

    Validates the name eagerly (helpful ``ValueError`` on a miss) and
    returns a callable producing a fresh
    :class:`~repro.core.runner.PipelineImplementation` per call — the
    shape the bench/perf harnesses construct their runs from.
    """
    policy_by_name(name)
    return lambda: policy_by_name(name).pipeline()


def resolve_policy(policy) -> SchedulingPolicy:
    """Coerce a name / policy / builder / graph into a policy instance."""
    if isinstance(policy, SchedulingPolicy):
        return policy
    if isinstance(policy, (PipelineBuilder, TaskGraph)):
        return GraphPolicy(policy)
    if isinstance(policy, str):
        return policy_by_name(policy)
    raise ValueError(
        "policy must be a name, a SchedulingPolicy, a PipelineBuilder or a "
        f"TaskGraph; got {type(policy).__name__}"
    )
