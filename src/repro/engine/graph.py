"""Task graphs and the pipeline-composition builder.

The engine's unit of work is a :class:`Task`: either a *process task*
(one of the registry's twenty numbered processes, whose dependency
edges are derived from its declared reads/writes) or a *custom task*
(an arbitrary callable, wired explicitly).  A :class:`PipelineBuilder`
collects tasks and dependency declarations and produces an immutable
:class:`TaskGraph`; the graph in turn derives barrier *regions* — the
antichain layers the executor runs between barriers — or validates a
caller-supplied layering such as the paper's Fig. 9 stage plan.

The registry's declarations are the single source of truth: process
edges are never wired by hand here, they come from
:func:`repro.core.dependencies.build_process_graph`, the same
derivation ``repro-lint``'s schedule check trusts.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import networkx as nx

from repro.core.dependencies import build_process_graph
from repro.core.registry import PROCESSES
from repro.errors import DependencyError, StageOrderError, VerificationError

#: Per-task strategies.  ``seq`` and ``task`` members are plain calls
#: (run inline, or as one task of a concurrent group); ``loop`` and
#: ``temp_folders`` members parallelize *inside* the process over its
#: data units; ``custom`` members carry their own callable.
SEQ = "seq"
TASK = "task"
LOOP = "loop"
TEMP_FOLDERS = "temp_folders"
CUSTOM = "custom"

#: Region-level strategy of a fused barrier group (mixed member kinds
#: dispatched together, single barrier at the end).
FUSED = "fused"

_TASK_STRATEGIES = (SEQ, TASK, LOOP, TEMP_FOLDERS, CUSTOM)


@dataclass(frozen=True)
class Task:
    """One node of the execution DAG.

    Process tasks carry a ``pid`` and take their dependency edges from
    the registry declarations; custom tasks carry a ``run`` callable
    with the signature ``run(ctx, result)`` and only the edges the
    builder wires explicitly.
    """

    name: str
    strategy: str = SEQ
    pid: int | None = None
    run: Callable | None = field(default=None, compare=False)
    #: Strategy label shown on the task's stage span (custom tasks
    #: only; process tasks show their execution strategy).
    span_strategy: str | None = None
    #: Declared artifact-identity effects (custom tasks only; process
    #: tasks take theirs from the registry).  The graph verifier diffs
    #: these against what it infers from the callable's source.
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    #: An opaque task's body is not statically analyzable (it shells
    #: out, fans out to ranks, ...); the verifier trusts the declared
    #: effects and says so instead of guessing.
    opaque: bool = False

    @property
    def is_process(self) -> bool:
        return self.pid is not None

    @property
    def label(self) -> str:
        return self.name


@dataclass(frozen=True)
class Region:
    """One barrier group of the execution plan.

    All members are mutually independent (the graph validation
    enforces it), so the executor may run them concurrently; the region
    boundary is the barrier.
    """

    label: str
    tasks: tuple[Task, ...]
    strategy: str

    @property
    def process_ids(self) -> tuple[int, ...]:
        return tuple(t.pid for t in self.tasks if t.pid is not None)


def _region_strategy(tasks: Sequence[Task]) -> str:
    """Region-level strategy implied by its members."""
    strategies = {t.strategy for t in tasks}
    if strategies == {SEQ}:
        return SEQ
    if strategies == {TASK}:
        return "tasks"
    if len(tasks) == 1:
        return tasks[0].strategy
    if strategies <= {TASK, SEQ}:
        return "tasks"
    return FUSED


class TaskGraph:
    """An immutable task DAG plus the layering/validation toolkit."""

    def __init__(self, tasks: Sequence[Task], edges: Iterable[tuple[str, str]]) -> None:
        self._tasks: dict[str, Task] = {t.name: t for t in tasks}
        self._order: tuple[str, ...] = tuple(t.name for t in tasks)
        graph = nx.DiGraph()
        for task in tasks:
            graph.add_node(task.name, task=task)
        for a, b in edges:
            graph.add_edge(a, b)
        if not nx.is_directed_acyclic_graph(graph):
            cycle = nx.find_cycle(graph)
            raise DependencyError(f"task graph has a cycle: {cycle}")
        self._graph = graph

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    @property
    def tasks(self) -> tuple[Task, ...]:
        """Tasks in insertion order."""
        return tuple(self._tasks[name] for name in self._order)

    def task(self, name: str) -> Task:
        try:
            return self._tasks[name]
        except KeyError:
            raise DependencyError(f"no task named {name!r} in this graph") from None

    @property
    def edges(self) -> tuple[tuple[str, str], ...]:
        return tuple(self._graph.edges)

    def has_edge(self, a: str, b: str) -> bool:
        return self._graph.has_edge(a, b)

    def process_ids(self) -> tuple[int, ...]:
        return tuple(t.pid for t in self.tasks if t.pid is not None)

    def predecessors(self, name: str) -> tuple[str, ...]:
        return tuple(self._graph.predecessors(name))

    # -- layering ----------------------------------------------------------

    def layers(self) -> list[list[Task]]:
        """Antichain layers (topological generations) of the DAG.

        Within a layer, insertion order is kept so derived plans are
        deterministic.
        """
        position = {name: i for i, name in enumerate(self._order)}
        return [
            [self._tasks[name] for name in sorted(generation, key=position.__getitem__)]
            for generation in nx.topological_generations(self._graph)
        ]

    def derive_regions(self, prefix: str = "G") -> list[Region]:
        """Barrier plan straight from the dependency layering.

        This is the engine-native schedule: as many barriers as the
        declarations require, none that they don't.
        """
        return [
            Region(
                label=f"{prefix}{i + 1}",
                tasks=tuple(layer),
                strategy=_region_strategy(layer),
            )
            for i, layer in enumerate(self.layers())
        ]

    # -- validation --------------------------------------------------------

    def validate_regions(self, regions: Sequence[Region]) -> None:
        """Raise unless ``regions`` is an executable barrier plan.

        Every task must appear exactly once, cross-region edges must
        point forward, and no edge may join two members of one region
        (members run concurrently, so they must be independent).  This
        is :func:`repro.core.dependencies.validate_stage_plan` lifted
        to task graphs.
        """
        region_of: dict[str, int] = {}
        for idx, region in enumerate(regions):
            for task in region.tasks:
                if task.name not in self._tasks:
                    raise StageOrderError(
                        f"region {region.label} lists unknown task {task.name!r}"
                    )
                if task.name in region_of:
                    raise StageOrderError(
                        f"task {task.name} appears in more than one region"
                    )
                region_of[task.name] = idx
        missing = [name for name in self._order if name not in region_of]
        if missing:
            raise StageOrderError(f"plan does not schedule tasks: {missing}")
        for a, b in self._graph.edges:
            if region_of[a] > region_of[b]:
                raise StageOrderError(
                    f"plan runs {b} (region {regions[region_of[b]].label}) before "
                    f"its dependency {a} (region {regions[region_of[a]].label})"
                )
            if region_of[a] == region_of[b]:
                raise StageOrderError(
                    f"region {regions[region_of[a]].label} contains dependent "
                    f"tasks {a} -> {b}; region members must be independent"
                )

    # -- fusion ------------------------------------------------------------

    def fusible(self, earlier: Region, later: Region) -> bool:
        """Whether two adjacent regions may merge into one barrier group.

        True when no dependency edge joins any member of ``earlier`` to
        any member of ``later`` — exactly the condition behind the
        ``repro-lint`` "could start concurrently" advisory.
        """
        return not any(
            self._graph.has_edge(a.name, b.name)
            for a in earlier.tasks
            for b in later.tasks
        )

    def fuse_regions(self, regions: Sequence[Region]) -> list[Region]:
        """Greedily merge adjacent fusible regions (left to right).

        A merge is taken only when the combined region stays internally
        edge-free against *every* already-absorbed member, so chains
        stop exactly where a real dependency begins.  Labels join with
        ``+`` (``II+III``), keeping fused stage spans self-describing;
        the joined components are ordered by the layer the plan
        schedules them in, then by name, so lint reports and fused span
        names are byte-stable across runs regardless of how the caller
        assembled the region list.
        """
        layer_of = {region.label: index for index, region in enumerate(regions)}

        def joined_label(group: Sequence[Region]) -> str:
            ordered = sorted(
                group, key=lambda r: (layer_of.get(r.label, len(layer_of)), r.label)
            )
            return "+".join(r.label for r in ordered)

        fused: list[Region] = []
        groups: list[list[Region]] = []
        for region in regions:
            if fused and self.fusible(fused[-1], region):
                fused.pop()
                group = groups.pop() + [region]
                members = tuple(t for r in group for t in r.tasks)
                fused.append(
                    Region(
                        label=joined_label(group),
                        tasks=members,
                        strategy=_region_strategy(members),
                    )
                )
                groups.append(group)
            else:
                fused.append(region)
                groups.append([region])
        return fused


class PipelineBuilder:
    """Compose a pipeline as tasks plus dependency declarations.

    Process tasks wire themselves: their edges are derived from the
    registry's versioned read/write declarations at :meth:`build` time.
    Custom tasks (arbitrary callables) are wired explicitly with
    ``after=`` or :meth:`after`.

        builder = PipelineBuilder(name="my-pipeline")
        builder.add_processes([0, 1, 2, 3], strategy="seq")
        check = builder.add_task("qc", run_quality_checks, after=["P3"])
        graph = builder.build()

    The builder is write-only state; :meth:`build` returns the
    immutable :class:`TaskGraph` the executor (and the scheduling
    policies) consume.
    """

    def __init__(self, name: str = "pipeline") -> None:
        self.name = name
        self._tasks: dict[str, Task] = {}
        self._sites: dict[str, str] = {}
        self._explicit_edges: set[tuple[str, str]] = set()

    @staticmethod
    def _registration_site() -> str:
        """The caller's ``file:line``, skipping frames of this module."""
        for frame in reversed(traceback.extract_stack()[:-1]):
            if not frame.filename.endswith(("engine/graph.py", "engine\\graph.py")):
                return f"{frame.filename}:{frame.lineno}"
        return "<unknown>"

    def _add(self, task: Task) -> Task:
        site = self._registration_site()
        if task.name in self._tasks:
            raise DependencyError(
                f"duplicate task name {task.name!r}: first registered at "
                f"{self._sites[task.name]}, registered again at {site}"
            )
        self._tasks[task.name] = task
        self._sites[task.name] = site
        return task

    def _resolve_name(self, ref: "Task | str | int") -> str:
        if isinstance(ref, Task):
            name = ref.name
        elif isinstance(ref, int):
            name = f"P{ref}"
        else:
            name = str(ref)
        if name not in self._tasks:
            raise DependencyError(f"unknown task {name!r}; add it before wiring")
        return name

    # -- adding tasks ------------------------------------------------------

    def add_process(
        self,
        pid: int,
        *,
        strategy: str = SEQ,
        after: Sequence["Task | str | int"] = (),
    ) -> Task:
        """Add registry process ``pid`` as a task named ``P<pid>``.

        Dependency edges against other process tasks come from the
        registry declarations automatically; ``after=`` adds explicit
        edges on top (typically against custom tasks).
        """
        if pid not in PROCESSES:
            known = sorted(PROCESSES)
            raise DependencyError(f"unknown process id {pid}; known: {known}")
        if strategy not in _TASK_STRATEGIES or strategy == CUSTOM:
            raise DependencyError(
                f"invalid process strategy {strategy!r}; "
                f"choose from {_TASK_STRATEGIES[:-1]}"
            )
        task = self._add(Task(name=f"P{pid}", strategy=strategy, pid=pid))
        for upstream in after:
            self.after(upstream, task)
        return task

    def add_processes(
        self,
        pids: Iterable[int],
        *,
        strategy: str = SEQ,
        strategies: dict[int, str] | None = None,
    ) -> list[Task]:
        """Add many registry processes; ``strategies`` overrides per pid."""
        overrides = strategies or {}
        return [
            self.add_process(pid, strategy=overrides.get(pid, strategy))
            for pid in pids
        ]

    def add_task(
        self,
        name: str,
        run: Callable,
        *,
        after: Sequence["Task | str | int"] = (),
        span_strategy: str | None = None,
        reads: Sequence[str] = (),
        writes: Sequence[str] = (),
        opaque: bool = False,
    ) -> Task:
        """Add a custom task: ``run(ctx, result)`` called at execution.

        Custom tasks only get the edges you declare (``after=`` /
        :meth:`after`); the registry knows nothing about them.
        ``span_strategy`` labels the task's stage span (default
        ``custom``).

        ``reads``/``writes`` declare the task's artifact-identity
        effects (``"comp_v2"``, ``"filter_params"``, ...) so the graph
        verifier (:mod:`repro.analysis.graphlint`) can prove the plan
        race-free and diff the declarations against the effects it
        infers from the callable's source.  ``opaque=True`` marks a
        body the verifier cannot analyze (rank fan-out, subprocesses);
        its declared effects are then taken on trust and reported as
        such rather than guessed at.
        """
        task = self._add(
            Task(
                name=str(name),
                strategy=CUSTOM,
                run=run,
                span_strategy=span_strategy,
                reads=tuple(reads),
                writes=tuple(writes),
                opaque=bool(opaque),
            )
        )
        for upstream in after:
            self.after(upstream, task)
        return task

    # -- wiring ------------------------------------------------------------

    def after(self, upstream: "Task | str | int", downstream: "Task | str | int") -> None:
        """Declare that ``downstream`` must wait for ``upstream``."""
        a = self._resolve_name(upstream)
        b = self._resolve_name(downstream)
        if a == b:
            raise DependencyError(f"task {a!r} cannot depend on itself")
        self._explicit_edges.add((a, b))

    # -- introspection -----------------------------------------------------

    def pending_tasks(self) -> tuple[Task, ...]:
        """Tasks added so far, in registration order (pre-build view)."""
        return tuple(self._tasks.values())

    def pending_edges(self) -> set[tuple[str, str]]:
        """All edges :meth:`build` would wire: explicit plus derived.

        Exposed so the graph verifier can diagnose a cyclic or
        inconsistent builder without :meth:`build` raising first.
        """
        edges: set[tuple[str, str]] = set(self._explicit_edges)
        pids = [t.pid for t in self._tasks.values() if t.pid is not None]
        if pids:
            process_graph = build_process_graph(pids)
            for a, b in process_graph.edges:
                edges.add((f"P{a}", f"P{b}"))
        return edges

    def registration_site(self, name: str) -> str | None:
        """Where (``file:line``) the named task was added, if known."""
        return self._sites.get(name)

    # -- building ----------------------------------------------------------

    def build(self, *, verify: bool = False) -> TaskGraph:
        """Derive all edges and return the immutable graph.

        With ``verify=True`` the built graph (under its derived barrier
        layering) is additionally run through the graph verifier
        (:func:`repro.analysis.graphlint.verify_graph`); error findings
        raise :class:`~repro.errors.VerificationError` listing every
        counterexample instead of letting an unsound pipeline execute.
        """
        graph = TaskGraph(list(self._tasks.values()), self.pending_edges())
        if verify:
            from repro.analysis.graphlint import verify_graph
            from repro.analysis.model import ERROR

            errors = [f for f in verify_graph(graph) if f.severity == ERROR]
            if errors:
                details = "\n".join(f"  - {f.message}" for f in errors)
                raise VerificationError(
                    f"pipeline {self.name!r} failed graph verification "
                    f"({len(errors)} error(s)):\n{details}"
                )
        return graph
