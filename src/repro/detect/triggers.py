"""Trigger association and event-window extraction.

Converts raw STA/LTA detections into the windows a triggered
accelerograph saves: pre-event memory before the trigger, the full
trigger span, and a post-event tail — then cuts those windows out of
the continuous stream as :class:`~repro.formats.v1.RawRecord`-ready
arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detect.stalta import TriggerOnset, recursive_sta_lta, trigger_onsets
from repro.errors import SignalError


@dataclass(frozen=True)
class TriggerWindow:
    """An event window in samples: [start, stop), trigger at ``trigger_on``."""

    start: int
    stop: int
    trigger_on: int
    peak_ratio: float

    @property
    def n_samples(self) -> int:
        """Window length in samples."""
        return self.stop - self.start


def extract_event_window(
    signal: np.ndarray,
    onset: TriggerOnset,
    dt: float,
    *,
    pre_event_s: float = 5.0,
    post_event_s: float = 10.0,
    ratio: np.ndarray | None = None,
) -> TriggerWindow:
    """Build the saved window around one trigger (clipped to the trace)."""
    signal = np.asarray(signal, dtype=float)
    if dt <= 0:
        raise SignalError(f"sample interval must be positive, got {dt}")
    pre = int(round(pre_event_s / dt))
    post = int(round(post_event_s / dt))
    start = max(0, onset.on - pre)
    stop = min(signal.size, onset.off + post)
    if ratio is not None:
        peak = float(np.max(ratio[onset.on : max(onset.off, onset.on + 1)]))
    else:
        peak = float("nan")
    return TriggerWindow(start=start, stop=stop, trigger_on=onset.on, peak_ratio=peak)


def detect_events(
    signal: np.ndarray,
    dt: float,
    *,
    sta_s: float = 0.5,
    lta_s: float = 20.0,
    on_threshold: float = 4.0,
    off_threshold: float = 1.5,
    pre_event_s: float = 5.0,
    post_event_s: float = 10.0,
    min_gap_s: float = 10.0,
) -> list[TriggerWindow]:
    """End-to-end detection on one continuous component.

    Runs the recursive STA/LTA, picks triggers with hysteresis, merges
    triggers closer than ``min_gap_s`` (aftershock coda re-triggers)
    and returns the windows a triggered instrument would save.
    """
    signal = np.asarray(signal, dtype=float)
    if dt <= 0:
        raise SignalError(f"sample interval must be positive, got {dt}")
    nsta = max(1, int(round(sta_s / dt)))
    nlta = int(round(lta_s / dt))
    ratio = recursive_sta_lta(signal, nsta, nlta)
    onsets = trigger_onsets(ratio, on_threshold, off_threshold, min_duration=nsta)

    # Merge onsets separated by less than the re-trigger gap.
    gap = int(round(min_gap_s / dt))
    merged: list[TriggerOnset] = []
    for onset in onsets:
        if merged and onset.on - merged[-1].off < gap:
            merged[-1] = TriggerOnset(on=merged[-1].on, off=onset.off)
        else:
            merged.append(onset)

    return [
        extract_event_window(
            signal,
            onset,
            dt,
            pre_event_s=pre_event_s,
            post_event_s=post_event_s,
            ratio=ratio,
        )
        for onset in merged
    ]
