"""Streaming (real-time) event detection.

Early-warning pipelines cannot wait for a finished file: data arrives
in packets and the detector must keep O(1) state between them.
:class:`StreamingDetector` is the incremental form of
:func:`~repro.detect.triggers.detect_events` — the recursive STA/LTA
averages, the trigger hysteresis and the re-trigger merge gap all
carry across ``push()`` calls, and a ring buffer holds just enough
recent samples to serve each completed window's pre-event memory.

Chunking is exact: pushing a stream in any split produces the same
triggers as one batch call (tested property).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.detect.triggers import TriggerWindow
from repro.errors import SignalError


@dataclass
class StreamingDetector:
    """Incremental STA/LTA detection over pushed chunks."""

    dt: float
    sta_s: float = 0.5
    lta_s: float = 20.0
    on_threshold: float = 4.0
    off_threshold: float = 1.5
    pre_event_s: float = 5.0
    post_event_s: float = 10.0
    min_gap_s: float = 10.0

    # -- internal state ---------------------------------------------------
    _sta: float = 0.0
    _lta: float = 0.0
    _n_seen: int = 0
    _active_on: int | None = None
    _active_peak: float = 0.0
    _pending: tuple[int, int, float] | None = None  # (on, off, peak)
    _post_deadline: int = -1
    _buffer: list[np.ndarray] = field(default_factory=list)
    _buffer_start: int = 0

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise SignalError(f"sample interval must be positive, got {self.dt}")
        if self.off_threshold >= self.on_threshold:
            raise SignalError("off threshold must be below on threshold")
        self._nsta = max(1, int(round(self.sta_s / self.dt)))
        self._nlta = int(round(self.lta_s / self.dt))
        if self._nlta <= self._nsta:
            raise SignalError("LTA window must exceed the STA window")
        self._csta = 1.0 / self._nsta
        self._clta = 1.0 / self._nlta
        self._npre = int(round(self.pre_event_s / self.dt))
        self._npost = int(round(self.post_event_s / self.dt))
        self._ngap = int(round(self.min_gap_s / self.dt))

    # -- sample buffering --------------------------------------------------

    def _append_buffer(self, chunk: np.ndarray) -> None:
        self._buffer.append(chunk)
        # Trim: keep enough history for pre-event memory of a trigger
        # that could still open at the current sample.
        keep_from = self._n_seen + len(chunk) - (self._npre + self._npost + self._ngap + len(chunk))
        while self._buffer and self._buffer_start + len(self._buffer[0]) < keep_from:
            dropped = self._buffer.pop(0)
            self._buffer_start += len(dropped)

    def _slice_buffer(self, start: int, stop: int) -> np.ndarray:
        """Samples [start, stop) from the retained history."""
        if start < self._buffer_start:
            start = self._buffer_start
        pieces = []
        cursor = self._buffer_start
        for chunk in self._buffer:
            lo = max(start - cursor, 0)
            hi = min(stop - cursor, len(chunk))
            if hi > lo:
                pieces.append(chunk[lo:hi])
            cursor += len(chunk)
        return np.concatenate(pieces) if pieces else np.empty(0)

    # -- the push interface --------------------------------------------------

    def push(self, chunk: np.ndarray) -> list[TriggerWindow]:
        """Feed new samples; returns any windows completed by them."""
        chunk = np.asarray(chunk, dtype=float)
        if chunk.ndim != 1:
            raise SignalError("push expects a 1-D chunk")
        completed: list[TriggerWindow] = []
        if chunk.size == 0:
            return completed
        self._append_buffer(chunk)

        for value in chunk:
            index = self._n_seen
            energy = value * value
            self._sta = self._csta * energy + (1.0 - self._csta) * self._sta
            self._lta = self._clta * energy + (1.0 - self._clta) * self._lta
            warm = index >= self._nlta
            ratio = self._sta / self._lta if warm and self._lta > 0 else 0.0

            if self._active_on is None:
                if warm and ratio >= self.on_threshold:
                    # Merge with a pending trigger when inside the gap.
                    if (
                        self._pending is not None
                        and index - self._pending[1] < self._ngap
                    ):
                        on, _, peak = self._pending
                        self._active_on = on
                        self._active_peak = max(peak, ratio)
                        self._pending = None
                    else:
                        completed.extend(self._flush_pending(force=True))
                        self._active_on = index
                        self._active_peak = ratio
            else:
                self._active_peak = max(self._active_peak, ratio)
                if ratio < self.off_threshold:
                    if index - self._active_on >= self._nsta:
                        self._pending = (self._active_on, index, self._active_peak)
                        self._post_deadline = index + self._ngap
                    self._active_on = None
                    self._active_peak = 0.0
            self._n_seen += 1

            if (
                self._pending is not None
                and self._active_on is None
                and self._n_seen > self._post_deadline
            ):
                completed.extend(self._flush_pending(force=True))
        return completed

    def _flush_pending(self, *, force: bool = False) -> list[TriggerWindow]:
        if self._pending is None:
            return []
        on, off, peak = self._pending
        if not force and self._n_seen - off < self._ngap:
            return []
        self._pending = None
        start = max(self._buffer_start, on - self._npre)
        stop = min(self._n_seen, off + self._npost)
        return [
            TriggerWindow(start=start, stop=stop, trigger_on=on, peak_ratio=peak)
        ]

    def finish(self) -> list[TriggerWindow]:
        """End of stream: close any open or pending trigger."""
        completed: list[TriggerWindow] = []
        if self._active_on is not None:
            if self._n_seen - self._active_on >= self._nsta:
                self._pending = (self._active_on, self._n_seen - 1, self._active_peak)
            self._active_on = None
        completed.extend(self._flush_pending(force=True))
        return completed

    def window_samples(self, window: TriggerWindow) -> np.ndarray:
        """The retained samples of a completed window (for V1 cutting)."""
        return self._slice_buffer(window.start, window.stop)
