"""Event detection on continuous accelerograph data.

Upstream of the pipeline, triggered accelerographs decide *when* a V1
record begins: a classic STA/LTA detector watches the continuous
stream and, on trigger, the instrument saves a window around the
event.  This package reimplements that front end — the missing piece
between "the ground shakes" and "a V1 file exists":

- :mod:`repro.detect.stalta`   — recursive and windowed STA/LTA
  characteristic functions with trigger on/off picking;
- :mod:`repro.detect.triggers` — trigger association into event
  windows and raw-record extraction.
"""

from repro.detect.stalta import (
    classic_sta_lta,
    recursive_sta_lta,
    trigger_onsets,
    TriggerOnset,
)
from repro.detect.triggers import (
    TriggerWindow,
    extract_event_window,
    detect_events,
)
from repro.detect.streaming import StreamingDetector

__all__ = [
    "StreamingDetector",
    "classic_sta_lta",
    "recursive_sta_lta",
    "trigger_onsets",
    "TriggerOnset",
    "TriggerWindow",
    "extract_event_window",
    "detect_events",
]
