"""STA/LTA characteristic functions and trigger picking.

The short-term-average / long-term-average ratio is the workhorse
detector of strong-motion instruments (and of Earthworm/SeisComP-class
systems the paper surveys): the STA tracks the signal envelope over a
fraction of a second, the LTA the background over tens of seconds, and
the ratio spikes when a phase arrives.

Two variants are provided: the *classic* moving-window form (exact
averages, vectorized with cumulative sums) and the *recursive* form
used in real-time firmware (exponential averages, O(1) memory).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignalError


def _validate(signal: np.ndarray, nsta: int, nlta: int) -> np.ndarray:
    signal = np.asarray(signal, dtype=float)
    if signal.ndim != 1:
        raise SignalError("STA/LTA expects a 1-D signal")
    if not 0 < nsta < nlta:
        raise SignalError(f"need 0 < nsta < nlta, got nsta={nsta}, nlta={nlta}")
    if signal.size < nlta:
        raise SignalError(
            f"signal ({signal.size} samples) shorter than the LTA window ({nlta})"
        )
    return signal


def classic_sta_lta(signal: np.ndarray, nsta: int, nlta: int) -> np.ndarray:
    """Moving-window STA/LTA of the squared signal, same length.

    The first ``nlta`` samples (no full LTA window yet) return 0, so a
    detector never triggers on startup transients.
    """
    signal = _validate(signal, nsta, nlta)
    energy = signal * signal
    csum = np.concatenate([[0.0], np.cumsum(energy)])
    sta = np.zeros_like(signal)
    lta = np.zeros_like(signal)
    idx = np.arange(nlta, signal.size + 1)
    sta_vals = (csum[idx] - csum[idx - nsta]) / nsta
    lta_vals = (csum[idx] - csum[idx - nlta]) / nlta
    sta[nlta - 1 :] = sta_vals
    lta[nlta - 1 :] = lta_vals
    ratio = np.zeros_like(signal)
    mask = lta > 0
    ratio[mask] = sta[mask] / lta[mask]
    return ratio


def recursive_sta_lta(signal: np.ndarray, nsta: int, nlta: int) -> np.ndarray:
    """Recursive (exponential-average) STA/LTA, same length.

    ``sta_k = (1/nsta) e_k + (1 - 1/nsta) sta_{k-1}`` and likewise for
    the LTA — the constant-memory form instruments run in firmware.
    Implemented with ``scipy.signal.lfilter`` (a first-order IIR per
    average), so it stays O(n) with C-speed inner loops.
    """
    signal = _validate(signal, nsta, nlta)
    from scipy.signal import lfilter

    energy = signal * signal
    csta = 1.0 / nsta
    clta = 1.0 / nlta
    sta = lfilter([csta], [1.0, -(1.0 - csta)], energy)
    lta = lfilter([clta], [1.0, -(1.0 - clta)], energy)
    ratio = np.zeros_like(signal)
    mask = lta > 0
    ratio[mask] = sta[mask] / lta[mask]
    # Suppress the warm-up region like the classic form.
    ratio[:nlta] = 0.0
    return ratio


@dataclass(frozen=True)
class TriggerOnset:
    """One detection: trigger-on and trigger-off sample indices."""

    on: int
    off: int

    def duration_samples(self) -> int:
        """Trigger duration in samples."""
        return self.off - self.on


def trigger_onsets(
    ratio: np.ndarray,
    on_threshold: float,
    off_threshold: float,
    *,
    min_duration: int = 1,
) -> list[TriggerOnset]:
    """Pick trigger on/off pairs from a characteristic function.

    Declares a trigger when the ratio crosses ``on_threshold`` and
    releases it when it falls below ``off_threshold`` (hysteresis;
    ``off_threshold < on_threshold``).  Triggers shorter than
    ``min_duration`` samples are discarded.  A trigger still active at
    the end of the trace closes at the last sample.
    """
    ratio = np.asarray(ratio, dtype=float)
    if off_threshold >= on_threshold:
        raise SignalError(
            f"off threshold ({off_threshold}) must be below on threshold ({on_threshold})"
        )
    if min_duration < 1:
        raise SignalError(f"min_duration must be >= 1, got {min_duration}")
    onsets: list[TriggerOnset] = []
    active: int | None = None
    for i, value in enumerate(ratio):
        if active is None and value >= on_threshold:
            active = i
        elif active is not None and value < off_threshold:
            if i - active >= min_duration:
                onsets.append(TriggerOnset(on=active, off=i))
            active = None
    if active is not None and ratio.size - active >= min_duration:
        onsets.append(TriggerOnset(on=active, off=ratio.size - 1))
    return onsets
