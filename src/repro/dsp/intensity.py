"""Ground-motion intensity measures.

Beyond the peak values the pipeline archives, observatories and
engineers characterize records with energy- and duration-based
measures.  These are the standard definitions (Arias 1970; Trifunac &
Brady 1975):

- **Arias intensity** ``Ia = pi / (2 g) * integral a(t)^2 dt``;
- the **Husid curve**, Arias intensity's normalized cumulative build-up;
- **significant duration** ``D_{5-95}`` (or any percentile pair), the
  time between two Husid fractions;
- **bracketed duration**, first-to-last exceedance of a threshold;
- **cumulative absolute velocity** ``CAV = integral |a(t)| dt``;
- **root-mean-square acceleration** over the significant window.

Inputs are accelerations in gal (cm/s^2); durations in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignalError
from repro.units import G_GAL


def arias_intensity(acc_gal: np.ndarray, dt: float) -> float:
    """Arias intensity in cm/s.

    ``Ia = pi/(2 g) * integral a^2 dt`` with g in gal so the result
    carries cm/s, the conventional unit.
    """
    acc_gal = np.asarray(acc_gal, dtype=float)
    if acc_gal.size == 0:
        raise SignalError("cannot compute Arias intensity of an empty record")
    if dt <= 0:
        raise SignalError(f"sample interval must be positive, got {dt}")
    return float(np.pi / (2.0 * G_GAL) * np.trapezoid(acc_gal**2, dx=dt))


def husid_curve(acc_gal: np.ndarray, dt: float) -> np.ndarray:
    """Normalized cumulative Arias build-up in [0, 1], same length.

    A flat-zero record returns all zeros (there is no energy to
    normalize by).
    """
    acc_gal = np.asarray(acc_gal, dtype=float)
    if acc_gal.size == 0:
        raise SignalError("cannot compute the Husid curve of an empty record")
    if dt <= 0:
        raise SignalError(f"sample interval must be positive, got {dt}")
    energy = np.concatenate([[0.0], np.cumsum(0.5 * dt * (acc_gal[1:] ** 2 + acc_gal[:-1] ** 2))])
    total = energy[-1]
    if total <= 0.0:
        return np.zeros_like(energy)
    return energy / total


def significant_duration(
    acc_gal: np.ndarray, dt: float, *, lower: float = 0.05, upper: float = 0.95
) -> float:
    """Time between the ``lower`` and ``upper`` Husid fractions (s).

    The default 5–95% pair is the Trifunac–Brady significant duration.
    """
    if not 0.0 <= lower < upper <= 1.0:
        raise SignalError(f"need 0 <= lower < upper <= 1, got {lower}, {upper}")
    husid = husid_curve(acc_gal, dt)
    if husid[-1] == 0.0:
        return 0.0
    t_lower = float(np.searchsorted(husid, lower)) * dt
    t_upper = float(np.searchsorted(husid, upper)) * dt
    return max(t_upper - t_lower, 0.0)


def bracketed_duration(acc_gal: np.ndarray, dt: float, threshold_gal: float = 0.05 * G_GAL) -> float:
    """First-to-last exceedance of ``threshold_gal`` (s); 0 if never."""
    acc_gal = np.asarray(acc_gal, dtype=float)
    if dt <= 0:
        raise SignalError(f"sample interval must be positive, got {dt}")
    if threshold_gal <= 0:
        raise SignalError(f"threshold must be positive, got {threshold_gal}")
    over = np.nonzero(np.abs(acc_gal) >= threshold_gal)[0]
    if over.size == 0:
        return 0.0
    return float((over[-1] - over[0]) * dt)


def cumulative_absolute_velocity(acc_gal: np.ndarray, dt: float) -> float:
    """CAV in cm/s: the integral of |a(t)|."""
    acc_gal = np.asarray(acc_gal, dtype=float)
    if acc_gal.size == 0:
        raise SignalError("cannot compute CAV of an empty record")
    if dt <= 0:
        raise SignalError(f"sample interval must be positive, got {dt}")
    return float(np.trapezoid(np.abs(acc_gal), dx=dt))


def rms_acceleration(acc_gal: np.ndarray, dt: float, *, significant_only: bool = True) -> float:
    """RMS acceleration (gal), over the 5–95% window by default."""
    acc_gal = np.asarray(acc_gal, dtype=float)
    if acc_gal.size == 0:
        raise SignalError("cannot compute RMS of an empty record")
    if significant_only:
        husid = husid_curve(acc_gal, dt)
        if husid[-1] > 0.0:
            i0 = int(np.searchsorted(husid, 0.05))
            i1 = max(int(np.searchsorted(husid, 0.95)), i0 + 1)
            acc_gal = acc_gal[i0:i1]
    return float(np.sqrt(np.mean(acc_gal**2)))


@dataclass(frozen=True)
class IntensityMeasures:
    """The full set of intensity measures for one component."""

    arias_cm_s: float
    significant_duration_s: float
    bracketed_duration_s: float
    cav_cm_s: float
    rms_gal: float


def intensity_measures(acc_gal: np.ndarray, dt: float) -> IntensityMeasures:
    """Compute every measure in one pass-friendly call."""
    return IntensityMeasures(
        arias_cm_s=arias_intensity(acc_gal, dt),
        significant_duration_s=significant_duration(acc_gal, dt),
        bracketed_duration_s=bracketed_duration(acc_gal, dt),
        cav_cm_s=cumulative_absolute_velocity(acc_gal, dt),
        rms_gal=rms_acceleration(acc_gal, dt),
    )
