"""Resampling utilities.

The Salvadoran network mixes instruments with different sampling rates
(paper §VIII: "a variety of equipment types and sampling rates"); the
synthetic dataset generator reproduces that, and these helpers let
examples and tests bring records to a common rate.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.fir import BandPassSpec, design_bandpass, fir_filter
from repro.errors import SignalError


def decimate(signal: np.ndarray, factor: int, dt: float) -> tuple[np.ndarray, float]:
    """Anti-alias filter and keep every ``factor``-th sample.

    Returns the decimated signal and the new sample interval.  The
    anti-alias filter is the library's own Hamming band-pass with its
    high cut at 80% of the new Nyquist.
    """
    if factor < 1:
        raise SignalError(f"decimation factor must be >= 1, got {factor}")
    signal = np.asarray(signal, dtype=float)
    if factor == 1:
        return signal.copy(), dt
    new_dt = dt * factor
    new_nyq = 0.5 / new_dt
    spec = BandPassSpec(
        f_stop_low=0.0005,
        f_pass_low=0.001,
        f_pass_high=0.8 * new_nyq,
        f_stop_high=0.95 * new_nyq,
    )
    taps = design_bandpass(spec, dt)
    filtered = fir_filter(signal, taps)
    return filtered[::factor], new_dt


def resample_linear(signal: np.ndarray, dt: float, new_dt: float) -> np.ndarray:
    """Resample by linear interpolation onto a new uniform grid.

    Suitable for modest rate changes between the instrument rates the
    network uses (100, 200, 250 Hz); spectral fidelity beyond the
    pass band is not required for those records.
    """
    signal = np.asarray(signal, dtype=float)
    if dt <= 0 or new_dt <= 0:
        raise SignalError("sample intervals must be positive")
    if signal.size == 0:
        return signal.copy()
    duration = (signal.shape[0] - 1) * dt
    n_new = int(np.floor(duration / new_dt)) + 1
    t_old = np.arange(signal.shape[0]) * dt
    t_new = np.arange(n_new) * new_dt
    return np.interp(t_new, t_old, signal)
