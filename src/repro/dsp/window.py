"""Window functions.

The legacy pipeline applies a Hamming-windowed band-pass filter to every
component (paper §II), and tapers record ends before Fourier analysis.
Windows are generated here rather than taken from NumPy so the exact
coefficients used by the pipeline are pinned by this codebase (and
covered by tests against the closed form).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SignalError


def hamming(n: int) -> np.ndarray:
    """Return an n-point symmetric Hamming window.

    ``w[k] = 0.54 - 0.46 cos(2 pi k / (n - 1))`` for ``k = 0 .. n-1``.
    For ``n == 1`` the window is the single value 1.0.
    """
    if n < 1:
        raise SignalError(f"window length must be >= 1, got {n}")
    if n == 1:
        return np.ones(1)
    k = np.arange(n)
    return 0.54 - 0.46 * np.cos(2.0 * np.pi * k / (n - 1))


def hann(n: int) -> np.ndarray:
    """Return an n-point symmetric Hann window."""
    if n < 1:
        raise SignalError(f"window length must be >= 1, got {n}")
    if n == 1:
        return np.ones(1)
    k = np.arange(n)
    return 0.5 - 0.5 * np.cos(2.0 * np.pi * k / (n - 1))


def cosine_taper(n: int, fraction: float = 0.05) -> np.ndarray:
    """Return an n-point cosine (Tukey) taper.

    ``fraction`` is the fraction of the record tapered at *each* end
    (so ``fraction=0.05`` leaves the middle 90% untouched).  This is the
    standard pre-FFT taper for strong-motion records.
    """
    if n < 1:
        raise SignalError(f"taper length must be >= 1, got {n}")
    if not 0.0 <= fraction <= 0.5:
        raise SignalError(f"taper fraction must be in [0, 0.5], got {fraction}")
    w = np.ones(n)
    m = int(np.floor(fraction * (n - 1)))
    if m == 0:
        return w
    k = np.arange(m + 1)
    ramp = 0.5 * (1.0 - np.cos(np.pi * k / m))
    w[: m + 1] = ramp
    w[n - m - 1 :] = ramp[::-1]
    return w


def apply_taper(signal: np.ndarray, fraction: float = 0.05) -> np.ndarray:
    """Return a copy of ``signal`` with a cosine taper applied."""
    signal = np.asarray(signal, dtype=float)
    return signal * cosine_taper(signal.shape[-1], fraction)
