"""Time-domain integration and differentiation of ground-motion records.

V2 files store acceleration, velocity and displacement; the latter two
are obtained by successive time integration of the corrected
acceleration.  Trapezoidal integration matches the legacy Fortran
(which integrated piecewise-linearly) and pairs exactly with the
Nigam–Jennings response-spectrum solver, which also assumes
piecewise-linear excitation.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.detrend import remove_linear_trend
from repro.errors import SignalError


def integrate_trapezoid(signal: np.ndarray, dt: float) -> np.ndarray:
    """Cumulative trapezoidal integral, same length as the input.

    The output starts at zero (the sensor is at rest before the event).
    """
    signal = np.asarray(signal, dtype=float)
    if signal.ndim != 1:
        raise SignalError("integrate_trapezoid expects a 1-D signal")
    if dt <= 0:
        raise SignalError(f"sample interval must be positive, got {dt}")
    if signal.size == 0:
        return signal.copy()
    out = np.empty_like(signal)
    out[0] = 0.0
    np.cumsum(0.5 * dt * (signal[1:] + signal[:-1]), out=out[1:])
    return out


def differentiate_central(signal: np.ndarray, dt: float) -> np.ndarray:
    """Central-difference derivative, one-sided at the ends."""
    signal = np.asarray(signal, dtype=float)
    if dt <= 0:
        raise SignalError(f"sample interval must be positive, got {dt}")
    if signal.size < 2:
        return np.zeros_like(signal)
    return np.gradient(signal, dt)


def acceleration_to_velocity(acc: np.ndarray, dt: float, *, detrend: bool = True) -> np.ndarray:
    """Integrate acceleration (gal) to velocity (cm/s).

    Integration amplifies any residual baseline into a linear velocity
    drift; ``detrend=True`` (default) removes the least-squares line
    from the integrated velocity, the conventional correction.
    """
    vel = integrate_trapezoid(acc, dt)
    if detrend and vel.size > 1:
        vel = remove_linear_trend(vel)
    return vel


def velocity_to_displacement(vel: np.ndarray, dt: float, *, detrend: bool = True) -> np.ndarray:
    """Integrate velocity (cm/s) to displacement (cm), with drift removal."""
    disp = integrate_trapezoid(vel, dt)
    if detrend and disp.size > 1:
        disp = remove_linear_trend(disp)
    return disp


def acceleration_to_motion(
    acc: np.ndarray, dt: float, *, detrend: bool = True
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return (acceleration, velocity, displacement) from acceleration."""
    acc = np.asarray(acc, dtype=float)
    vel = acceleration_to_velocity(acc, dt, detrend=detrend)
    disp = velocity_to_displacement(vel, dt, detrend=detrend)
    return acc, vel, disp
