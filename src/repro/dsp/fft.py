"""Fast Fourier transforms.

The pipeline's process P7 ("Apply fourier transformation") is the
spectral workhorse.  We provide a fully self-contained FFT — an
iterative radix-2 Cooley–Tukey transform plus Bluestein's chirp-z
algorithm for arbitrary lengths — so the library has no hidden
dependency on a vendored FFT for correctness.  The module-level
:func:`fft` / :func:`rfft` entry points default to NumPy's pocketfft
for speed (per the HPC guidance: vectorize, then use compiled kernels
for hot spots), and the pure implementations are kept as a reference
and exercised against NumPy in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SignalError


def next_pow2(n: int) -> int:
    """Return the smallest power of two >= n (n >= 1)."""
    if n < 1:
        raise SignalError(f"next_pow2 requires n >= 1, got {n}")
    return 1 << (n - 1).bit_length()


def _bit_reverse_permutation(n: int) -> np.ndarray:
    """Index permutation that bit-reverses positions for a radix-2 FFT."""
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        rev = (rev << 1) | (idx & 1)
        idx >>= 1
    return rev


def fft_radix2(x: np.ndarray) -> np.ndarray:
    """Iterative radix-2 Cooley–Tukey FFT.

    ``len(x)`` must be a power of two.  Runs all butterflies of a level
    as vectorized NumPy operations, so the Python-level loop is only
    O(log n) deep.
    """
    x = np.asarray(x, dtype=complex)
    n = x.shape[0]
    if n == 0:
        raise SignalError("fft_radix2 requires a non-empty input")
    if n & (n - 1):
        raise SignalError(f"fft_radix2 requires a power-of-two length, got {n}")
    if n == 1:
        return x.copy()
    out = x[_bit_reverse_permutation(n)].copy()
    half = 1
    while half < n:
        step = half * 2
        # Twiddle factors for this level, shared by every block.
        tw = np.exp(-2j * np.pi * np.arange(half) / step)
        blocks = out.reshape(n // step, step)
        # Copy: the first in-place write below would otherwise clobber
        # the view before the second uses it.
        even = blocks[:, :half].copy()
        odd = blocks[:, half:] * tw
        blocks[:, :half] = even + odd
        blocks[:, half:] = even - odd
        half = step
    return out


def ifft_radix2(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`fft_radix2` (power-of-two length)."""
    x = np.asarray(x, dtype=complex)
    n = x.shape[0]
    return np.conj(fft_radix2(np.conj(x))) / n


def fft_bluestein(x: np.ndarray) -> np.ndarray:
    """Bluestein (chirp-z) FFT for arbitrary lengths.

    Re-expresses the DFT as a convolution, evaluated with the radix-2
    transform at a padded power-of-two length >= 2n - 1.
    """
    x = np.asarray(x, dtype=complex)
    n = x.shape[0]
    if n == 0:
        raise SignalError("fft_bluestein requires a non-empty input")
    if n == 1:
        return x.copy()
    k = np.arange(n)
    # exp(-i pi k^2 / n); k^2 taken mod 2n to keep the argument small.
    chirp = np.exp(-1j * np.pi * ((k * k) % (2 * n)) / n)
    m = next_pow2(2 * n - 1)
    a = np.zeros(m, dtype=complex)
    a[:n] = x * chirp
    b = np.zeros(m, dtype=complex)
    b[:n] = np.conj(chirp)
    b[m - n + 1 :] = np.conj(chirp[1:][::-1])
    conv = ifft_radix2(fft_radix2(a) * fft_radix2(b))
    return conv[:n] * chirp


def fft_pure(x: np.ndarray) -> np.ndarray:
    """Self-contained FFT for any length (radix-2 or Bluestein)."""
    x = np.asarray(x, dtype=complex)
    n = x.shape[0]
    if n and not (n & (n - 1)):
        return fft_radix2(x)
    return fft_bluestein(x)


def ifft_pure(x: np.ndarray) -> np.ndarray:
    """Self-contained inverse FFT for any length."""
    x = np.asarray(x, dtype=complex)
    n = x.shape[0]
    if n == 0:
        raise SignalError("ifft_pure requires a non-empty input")
    return np.conj(fft_pure(np.conj(x))) / n


def fft(x: np.ndarray, *, pure: bool = False) -> np.ndarray:
    """Forward complex FFT.

    Uses NumPy's pocketfft by default; pass ``pure=True`` to run the
    self-contained implementation (identical results to within
    floating-point round-off — asserted by the test suite).
    """
    if pure:
        return fft_pure(x)
    return np.fft.fft(np.asarray(x))


def ifft(x: np.ndarray, *, pure: bool = False) -> np.ndarray:
    """Inverse complex FFT (see :func:`fft`)."""
    if pure:
        return ifft_pure(x)
    return np.fft.ifft(np.asarray(x))


def rfft(x: np.ndarray, *, pure: bool = False) -> np.ndarray:
    """FFT of a real signal, returning the non-negative-frequency half."""
    x = np.asarray(x, dtype=float)
    if pure:
        full = fft_pure(x)
        return full[: x.shape[0] // 2 + 1]
    return np.fft.rfft(x)


def irfft(spectrum: np.ndarray, n: int, *, pure: bool = False) -> np.ndarray:
    """Inverse of :func:`rfft` for an n-sample real signal."""
    if pure:
        spectrum = np.asarray(spectrum, dtype=complex)
        full = np.empty(n, dtype=complex)
        half = n // 2 + 1
        full[:half] = spectrum[:half]
        full[half:] = np.conj(spectrum[1 : n - half + 1][::-1])
        return ifft_pure(full).real
    return np.fft.irfft(spectrum, n)


def rfft_frequencies(n: int, dt: float) -> np.ndarray:
    """Frequencies (Hz) matching :func:`rfft` of an n-sample, dt-spaced signal."""
    if n < 1:
        raise SignalError(f"rfft_frequencies requires n >= 1, got {n}")
    if dt <= 0:
        raise SignalError(f"sample interval must be positive, got {dt}")
    return np.fft.rfftfreq(n, dt)
