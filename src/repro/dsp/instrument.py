"""Accelerograph instrument response: simulation and removal.

A force-balance accelerometer is itself a damped oscillator: what the
V1 file records is the true ground acceleration seen through the
sensor's transfer function

``H(f) = fn^2 / (fn^2 - f^2 + 2 i zeta fn f)``

— unit gain well below the natural frequency ``fn`` (50–200 Hz for
strong-motion sensors), resonant near it, and rolling off above.
Removing this response ("instrument correction") is part of producing
corrected records; the division is regularized with the classic
water-level method so out-of-band noise is not amplified without
bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignalError


@dataclass(frozen=True)
class AccelerometerModel:
    """A force-balance accelerometer as a damped SDOF sensor.

    ``natural_freq_hz`` is the sensor's natural frequency (a modern
    strong-motion sensor sits at 50–200 Hz); ``damping`` its fraction
    of critical (typically ~0.7, giving a maximally flat pass band);
    ``sensitivity`` a flat gain factor (1.0 = counts already in gal).
    """

    natural_freq_hz: float = 100.0
    damping: float = 0.707
    sensitivity: float = 1.0

    def __post_init__(self) -> None:
        if self.natural_freq_hz <= 0:
            raise SignalError(f"natural frequency must be positive, got {self.natural_freq_hz}")
        if not 0 < self.damping < 2:
            raise SignalError(f"sensor damping must be in (0, 2), got {self.damping}")
        if self.sensitivity <= 0:
            raise SignalError(f"sensitivity must be positive, got {self.sensitivity}")

    def transfer_function(self, freqs_hz: np.ndarray) -> np.ndarray:
        """Complex response (recorded / true acceleration) at ``freqs_hz``."""
        freqs_hz = np.asarray(freqs_hz, dtype=float)
        fn = self.natural_freq_hz
        return (
            self.sensitivity
            * fn**2
            / (fn**2 - freqs_hz**2 + 2j * self.damping * fn * freqs_hz)
        )


def simulate_instrument(
    acc_true: np.ndarray, dt: float, model: AccelerometerModel
) -> np.ndarray:
    """What the sensor records for a true ground acceleration."""
    acc_true = np.asarray(acc_true, dtype=float)
    if acc_true.size == 0:
        raise SignalError("cannot pass an empty record through the instrument")
    if dt <= 0:
        raise SignalError(f"sample interval must be positive, got {dt}")
    spectrum = np.fft.rfft(acc_true)
    freqs = np.fft.rfftfreq(acc_true.size, dt)
    recorded = np.fft.irfft(spectrum * model.transfer_function(freqs), acc_true.size)
    return recorded


def remove_instrument_response(
    acc_recorded: np.ndarray,
    dt: float,
    model: AccelerometerModel,
    *,
    water_level: float = 0.05,
) -> np.ndarray:
    """Deconvolve the sensor response (water-level regularized).

    Division by ``H(f)`` explodes wherever ``|H|`` is small (far above
    the sensor's corner); the water-level method floors ``|H|`` at
    ``water_level * max|H|``, preserving the phase — the standard
    instrument-correction practice.
    """
    acc_recorded = np.asarray(acc_recorded, dtype=float)
    if acc_recorded.size == 0:
        raise SignalError("cannot correct an empty record")
    if dt <= 0:
        raise SignalError(f"sample interval must be positive, got {dt}")
    if not 0 < water_level < 1:
        raise SignalError(f"water level must be in (0, 1), got {water_level}")
    spectrum = np.fft.rfft(acc_recorded)
    freqs = np.fft.rfftfreq(acc_recorded.size, dt)
    h = model.transfer_function(freqs)
    mag = np.abs(h)
    floor = water_level * mag.max()
    # Keep the phase; lift only the magnitude.
    lifted = np.where(mag < floor, h * (floor / np.maximum(mag, 1e-300)), h)
    corrected = np.fft.irfft(spectrum / lifted, acc_recorded.size)
    return corrected
