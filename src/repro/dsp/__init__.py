"""Digital signal processing substrate for strong-motion records.

This package reimplements, in vectorized NumPy, the numerical kernels
the legacy Fortran pipeline relied on:

- :mod:`repro.dsp.window`   — Hamming/Hann windows and cosine tapers.
- :mod:`repro.dsp.fft`      — radix-2 + Bluestein FFT (self-contained),
  with a NumPy-backed fast path used by default.
- :mod:`repro.dsp.fir`      — windowed-sinc band-pass design (the
  paper's "Hamming band-pass filter") and FFT convolution.
- :mod:`repro.dsp.detrend`  — mean/linear/polynomial baseline removal.
- :mod:`repro.dsp.integrate`— acceleration → velocity → displacement.
- :mod:`repro.dsp.peak`     — PGA/PGV/PGD extraction.
- :mod:`repro.dsp.resample` — decimation and linear resampling.
"""

from repro.dsp.window import (
    hamming,
    hann,
    cosine_taper,
    apply_taper,
)
from repro.dsp.fft import (
    fft,
    ifft,
    rfft,
    irfft,
    fft_radix2,
    ifft_radix2,
    fft_bluestein,
    fft_pure,
    ifft_pure,
    next_pow2,
    rfft_frequencies,
)
from repro.dsp.fir import (
    BandPassSpec,
    design_bandpass,
    fir_filter,
    hamming_bandpass,
    filter_delay_samples,
)
from repro.dsp.detrend import (
    remove_mean,
    remove_linear_trend,
    remove_polynomial_trend,
    baseline_correct,
)
from repro.dsp.integrate import (
    integrate_trapezoid,
    differentiate_central,
    acceleration_to_velocity,
    velocity_to_displacement,
    acceleration_to_motion,
)
from repro.dsp.peak import (
    peak_amplitude,
    peak_index,
    peak_ground_motion,
    PeakValues,
)
from repro.dsp.resample import (
    decimate,
    resample_linear,
)
from repro.dsp.instrument import (
    AccelerometerModel,
    remove_instrument_response,
    simulate_instrument,
)
from repro.dsp.intensity import (
    IntensityMeasures,
    arias_intensity,
    bracketed_duration,
    cumulative_absolute_velocity,
    husid_curve,
    intensity_measures,
    rms_acceleration,
    significant_duration,
)

__all__ = [
    "hamming",
    "hann",
    "cosine_taper",
    "apply_taper",
    "fft",
    "ifft",
    "rfft",
    "irfft",
    "fft_radix2",
    "ifft_radix2",
    "fft_bluestein",
    "fft_pure",
    "ifft_pure",
    "next_pow2",
    "rfft_frequencies",
    "BandPassSpec",
    "design_bandpass",
    "fir_filter",
    "hamming_bandpass",
    "filter_delay_samples",
    "remove_mean",
    "remove_linear_trend",
    "remove_polynomial_trend",
    "baseline_correct",
    "integrate_trapezoid",
    "differentiate_central",
    "acceleration_to_velocity",
    "velocity_to_displacement",
    "acceleration_to_motion",
    "peak_amplitude",
    "peak_index",
    "peak_ground_motion",
    "PeakValues",
    "decimate",
    "resample_linear",
    "AccelerometerModel",
    "remove_instrument_response",
    "simulate_instrument",
    "IntensityMeasures",
    "arias_intensity",
    "bracketed_duration",
    "cumulative_absolute_velocity",
    "husid_curve",
    "intensity_measures",
    "rms_acceleration",
    "significant_duration",
]
