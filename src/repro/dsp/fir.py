"""Hamming-windowed band-pass FIR filters.

The paper's correction step is "a Hamming band-pass filter" applied
twice: once with default corner frequencies (process P4) and once with
the FPL/FSL corners recovered from the velocity Fourier spectrum
(process P13).  We implement the classic windowed-sinc design: an ideal
band-pass impulse response truncated by a Hamming window, applied with
zero-phase FFT convolution so the corrected record is not time-shifted
relative to the raw one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.fft import next_pow2
from repro.dsp.window import hamming
from repro.errors import FilterDesignError


@dataclass(frozen=True)
class BandPassSpec:
    """Corner frequencies of a band-pass filter, in Hz.

    ``f_stop_low < f_pass_low < f_pass_high < f_stop_high``.  The
    pass-band edges are the paper's FPL (low) and the fixed high-cut;
    the stop edges (FSL at the low side) set the transition width and
    therefore the filter length.
    """

    f_stop_low: float
    f_pass_low: float
    f_pass_high: float
    f_stop_high: float

    def validate(self, nyquist: float) -> None:
        """Raise :class:`FilterDesignError` unless the corners are usable."""
        f = (self.f_stop_low, self.f_pass_low, self.f_pass_high, self.f_stop_high)
        if any(not np.isfinite(v) for v in f):
            raise FilterDesignError(f"non-finite corner frequency in {self}")
        if not (0.0 <= self.f_stop_low < self.f_pass_low < self.f_pass_high < self.f_stop_high):
            raise FilterDesignError(
                "corner frequencies must satisfy 0 <= FSL < FPL < FPH < FSH, got "
                f"{f}"
            )
        if self.f_stop_high > nyquist:
            raise FilterDesignError(
                f"high stop frequency {self.f_stop_high} Hz exceeds Nyquist {nyquist} Hz"
            )

    @property
    def transition_width(self) -> float:
        """Narrowest transition band in Hz (controls filter length)."""
        return min(self.f_pass_low - self.f_stop_low, self.f_stop_high - self.f_pass_high)

    def with_low_corners(self, fsl: float, fpl: float) -> "BandPassSpec":
        """Return a copy with the low-side corners replaced (P13's update)."""
        return BandPassSpec(fsl, fpl, self.f_pass_high, self.f_stop_high)


#: Default corners used by process P4 before the Fourier analysis has
#: produced record-specific FPL/FSL values (paper §II, "default
#: parameters").  50 Hz high cut suits the 100–200 Hz sampling used by
#: digital accelerographs.
DEFAULT_BANDPASS = BandPassSpec(
    f_stop_low=0.05, f_pass_low=0.10, f_pass_high=25.0, f_stop_high=30.0
)


def _ideal_bandpass(taps: int, f_low: float, f_high: float, dt: float) -> np.ndarray:
    """Ideal (sinc) band-pass impulse response, ``taps`` odd."""
    m = (taps - 1) // 2
    n = np.arange(-m, m + 1)
    # Difference of two low-pass sincs; np.sinc is the normalized sinc.
    h = 2.0 * f_high * dt * np.sinc(2.0 * f_high * dt * n) - 2.0 * f_low * dt * np.sinc(
        2.0 * f_low * dt * n
    )
    return h


def design_bandpass(spec: BandPassSpec, dt: float, *, max_taps: int = 8191) -> np.ndarray:
    """Design Hamming-windowed band-pass FIR taps for a dt-sampled signal.

    The filter length follows the standard Hamming design rule
    ``taps ~= 3.3 / (dw * dt)`` where ``dw`` is the narrowest transition
    width, forced odd so the filter has an integer group delay, and
    clamped to ``max_taps``.  Cut-off frequencies are placed mid-way
    through each transition band.
    """
    if dt <= 0:
        raise FilterDesignError(f"sample interval must be positive, got {dt}")
    nyquist = 0.5 / dt
    spec.validate(nyquist)
    width = spec.transition_width
    taps = int(np.ceil(3.3 / (width * dt)))
    taps = min(taps, max_taps)
    if taps % 2 == 0:
        taps += 1
    taps = max(taps, 5)
    f_low = 0.5 * (spec.f_stop_low + spec.f_pass_low)
    f_high = 0.5 * (spec.f_pass_high + spec.f_stop_high)
    h = _ideal_bandpass(taps, f_low, f_high, dt) * hamming(taps)
    # Normalize to unit gain at the geometric center of the pass band.
    fc = np.sqrt(max(f_low, 1e-12) * f_high)
    m = (taps - 1) // 2
    n = np.arange(-m, m + 1)
    gain = np.abs(np.sum(h * np.exp(-2j * np.pi * fc * dt * n)))
    if gain > 0:
        h = h / gain
    return h


def filter_delay_samples(taps: np.ndarray) -> int:
    """Group delay of a linear-phase FIR filter, in samples."""
    return (len(taps) - 1) // 2


def fir_filter(signal: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Zero-phase FIR filtering via FFT convolution.

    The signal is convolved with the (symmetric, linear-phase) taps and
    the group delay is removed, giving an output aligned with the input
    and of the same length.  Ends are zero-padded (the records are
    tapered before filtering, so edge transients are negligible).
    """
    signal = np.asarray(signal, dtype=float)
    taps = np.asarray(taps, dtype=float)
    if signal.ndim != 1 or taps.ndim != 1:
        raise FilterDesignError("fir_filter expects 1-D signal and taps")
    n = signal.shape[0]
    k = taps.shape[0]
    if n == 0:
        return signal.copy()
    m = next_pow2(n + k - 1)
    spec = np.fft.rfft(signal, m) * np.fft.rfft(taps, m)
    full = np.fft.irfft(spec, m)[: n + k - 1]
    delay = filter_delay_samples(taps)
    return full[delay : delay + n]


def hamming_bandpass(
    signal: np.ndarray,
    dt: float,
    spec: BandPassSpec = DEFAULT_BANDPASS,
    *,
    max_taps: int = 8191,
) -> np.ndarray:
    """Apply a Hamming band-pass filter; convenience over design + filter."""
    taps = design_bandpass(spec, dt, max_taps=max_taps)
    return fir_filter(signal, taps)
