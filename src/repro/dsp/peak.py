"""Peak ground-motion extraction.

The pipeline archives peak ground acceleration (PGA) during the
correction step (paper §II) and writes maxima for every component to
the ``maxvals`` files.  Peaks here are *absolute* peaks — the largest
magnitude regardless of sign — with the signed value and its time
retained, matching strong-motion reporting conventions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignalError


def peak_index(signal: np.ndarray) -> int:
    """Index of the sample with the largest absolute amplitude."""
    signal = np.asarray(signal, dtype=float)
    if signal.size == 0:
        raise SignalError("cannot take the peak of an empty signal")
    return int(np.argmax(np.abs(signal)))


def peak_amplitude(signal: np.ndarray) -> float:
    """Signed value of the sample with the largest absolute amplitude."""
    signal = np.asarray(signal, dtype=float)
    return float(signal[peak_index(signal)])


@dataclass(frozen=True)
class PeakValues:
    """Peak ground motion of one component.

    Amplitudes are signed (the sign is reported by observatories);
    times are seconds from the start of the record.
    """

    pga: float
    pga_time: float
    pgv: float
    pgv_time: float
    pgd: float
    pgd_time: float

    def as_tuple(self) -> tuple[float, float, float, float, float, float]:
        """Flatten to (pga, t, pgv, t, pgd, t) for fixed-width output."""
        return (self.pga, self.pga_time, self.pgv, self.pgv_time, self.pgd, self.pgd_time)


def peak_ground_motion(
    acc: np.ndarray, vel: np.ndarray, disp: np.ndarray, dt: float
) -> PeakValues:
    """Extract PGA/PGV/PGD (signed) and their times from A/V/D traces."""
    if dt <= 0:
        raise SignalError(f"sample interval must be positive, got {dt}")
    ia, iv, id_ = peak_index(acc), peak_index(vel), peak_index(disp)
    return PeakValues(
        pga=float(np.asarray(acc, dtype=float)[ia]),
        pga_time=ia * dt,
        pgv=float(np.asarray(vel, dtype=float)[iv]),
        pgv_time=iv * dt,
        pgd=float(np.asarray(disp, dtype=float)[id_]),
        pgd_time=id_ * dt,
    )
