"""Baseline correction (detrending) of accelerograms.

Uncorrected (V1) records carry an instrument offset and slow drift; the
"definitive acceleration baseline correction" of the paper removes a
low-order trend before/after band-pass filtering.  We provide mean,
linear and polynomial removal plus the composite
:func:`baseline_correct` used by the pipeline processes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SignalError


def remove_mean(signal: np.ndarray) -> np.ndarray:
    """Return the signal with its arithmetic mean removed."""
    signal = np.asarray(signal, dtype=float)
    if signal.size == 0:
        raise SignalError("cannot detrend an empty signal")
    return signal - signal.mean()


def remove_linear_trend(signal: np.ndarray) -> np.ndarray:
    """Return the signal with the least-squares straight line removed."""
    signal = np.asarray(signal, dtype=float)
    n = signal.shape[0]
    if n == 0:
        raise SignalError("cannot detrend an empty signal")
    if n == 1:
        return np.zeros(1)
    t = np.arange(n, dtype=float)
    t -= t.mean()
    slope = np.dot(t, signal - signal.mean()) / np.dot(t, t)
    return signal - signal.mean() - slope * t


def remove_polynomial_trend(signal: np.ndarray, order: int) -> np.ndarray:
    """Return the signal with a least-squares polynomial of ``order`` removed.

    ``order=0`` removes the mean, ``order=1`` the straight line, and so
    on.  The fit abscissa is normalized to [-1, 1] for conditioning.
    """
    signal = np.asarray(signal, dtype=float)
    n = signal.shape[0]
    if n == 0:
        raise SignalError("cannot detrend an empty signal")
    if order < 0:
        raise SignalError(f"polynomial order must be >= 0, got {order}")
    if order == 0:
        return remove_mean(signal)
    if n <= order:
        # Not enough points to constrain the polynomial; fall back to mean.
        return remove_mean(signal)
    x = np.linspace(-1.0, 1.0, n)
    coeffs = np.polynomial.polynomial.polyfit(x, signal, order)
    trend = np.polynomial.polynomial.polyval(x, coeffs)
    return signal - trend


def baseline_correct(signal: np.ndarray, *, order: int = 1) -> np.ndarray:
    """Standard accelerogram baseline correction.

    Removes the pre-event mean estimated from the first 5% of the
    record (instrument offset), then a least-squares polynomial trend
    of the given order from the whole record.
    """
    signal = np.asarray(signal, dtype=float)
    n = signal.shape[0]
    if n == 0:
        raise SignalError("cannot baseline-correct an empty signal")
    lead = max(1, n // 20)
    corrected = signal - signal[:lead].mean()
    return remove_polynomial_trend(corrected, order)
