"""Experiment E3 — regenerate Fig. 12 (grouped per-event times).

Asserts the figure's qualitative content: each implementation improves
on its predecessor for every event, and execution time grows with the
event's total data points.
"""

from benchmarks.conftest import fresh_context
from repro.bench.figure12 import figure12_model, monotone_in_points, render_figure12
from repro.bench.table1 import table1_model
from repro.core import FullyParallel, SequentialOriginal


def test_bench_figure12_model(benchmark):
    series = benchmark(figure12_model)
    for i in range(6):
        assert series["seq_original_s"][i] > series["seq_optimized_s"][i]
        assert series["seq_optimized_s"][i] > series["partial_parallel_s"][i]
        assert series["partial_parallel_s"][i] > series["full_parallel_s"][i]


def test_bench_figure12_monotonicity():
    assert monotone_in_points(table1_model())


def test_bench_figure12_render(benchmark):
    series = figure12_model()
    assert "Partially" in benchmark(render_figure12, series)


def test_bench_figure12_measured_pair(benchmark, tmp_path, bench_dataset_dir):
    """Measured mode: sequential-original vs fully-parallel on this box."""
    counter = iter(range(1_000_000))

    def run_both():
        seq = SequentialOriginal().run(
            fresh_context(tmp_path / f"s{next(counter)}", bench_dataset_dir)
        )
        par = FullyParallel().run(
            fresh_context(tmp_path / f"p{next(counter)}", bench_dataset_dir)
        )
        return seq, par

    seq, par = benchmark.pedantic(run_both, rounds=1, iterations=1, warmup_rounds=0)
    # The optimized structure must at least not regress grossly even on
    # a single-core machine (threads cost little here).
    assert par.total_s < 3.0 * seq.total_s
