"""Experiment E4 — regenerate Fig. 13 (speedup & throughput vs size).

Asserts the figure's claims: speedup grows from ~2.4x to ~2.9x with
problem size, parallel throughput lands in the 1,700-2,300 points/s
band and sequential throughput near 800 points/s.
"""

import pytest

from repro.bench.figure13 import figure13_model, render_figure13
from repro.bench.paper_data import (
    PAPER_PAR_POINTS_PER_SECOND,
    PAPER_SEQ_POINTS_PER_SECOND,
)


def test_bench_figure13_model(benchmark):
    rows = benchmark(figure13_model)
    assert rows[-1].speedup > rows[0].speedup
    assert rows[-1].speedup == pytest.approx(2.88, abs=0.1)
    assert rows[0].speedup == pytest.approx(2.39, abs=0.15)


def test_bench_figure13_throughput_bands():
    rows = figure13_model()
    lo, hi = PAPER_PAR_POINTS_PER_SECOND
    for row in rows:
        assert 0.9 * lo < row.points_per_second_parallel < 1.05 * hi
        assert row.points_per_second_sequential == pytest.approx(
            PAPER_SEQ_POINTS_PER_SECOND, rel=0.15
        )


def test_bench_figure13_render(benchmark):
    rows = figure13_model()
    assert "Speedup" in benchmark(render_figure13, rows)
