"""Micro-benchmarks of the parallel runtime itself.

Pins the overhead story: parallel_for dispatch cost per item, task
spawn cost, and the simulated scheduler's throughput on graphs the
size the pipeline generates (a few hundred tasks).
"""

import numpy as np

from repro.bench.taskgraphs import build_sim_tasks
from repro.bench.workloads import paper_workloads
from repro.parallel.omp import TaskGroup, parallel_for
from repro.parallel.simulate import PAPER_MACHINE, simulate_task_graph


def _tiny(x: int) -> int:
    return x + 1


def test_bench_parallel_for_dispatch_serial(benchmark):
    items = list(range(200))
    out = benchmark(parallel_for, _tiny, items, backend="serial")
    assert out[-1] == 200


def test_bench_parallel_for_dispatch_threads(benchmark):
    items = list(range(200))
    out = benchmark(
        parallel_for, _tiny, items, backend="thread", num_workers=4, schedule="static"
    )
    assert out[0] == 1


def test_bench_taskgroup_spawn(benchmark):
    def spawn_four():
        with TaskGroup(backend="thread", num_workers=4) as tg:
            for i in range(4):
                tg.task(_tiny, i)
        return tg.results

    assert benchmark(spawn_four) == [1, 2, 3, 4]


def test_bench_simulator_full_graph(benchmark):
    """Scheduling the fully-parallel graph of the largest event."""
    workload = paper_workloads()[-1]
    tasks = build_sim_tasks("full-parallel", workload)
    result = benchmark(simulate_task_graph, tasks, PAPER_MACHINE)
    assert result.makespan_s > 0
    assert len(result.placements) == len(tasks)


def test_bench_simulator_wide_graph(benchmark):
    from repro.parallel.simulate import SimTask

    rng = np.random.default_rng(3)
    tasks = [
        SimTask(f"t{i}", float(rng.uniform(0.1, 5.0)), io_fraction=0.2)
        for i in range(500)
    ]
    result = benchmark(simulate_task_graph, tasks, PAPER_MACHINE)
    assert result.makespan_s > 0
