"""Experiment E6 — ablation benches for the §VIII discussion.

Times the sweeps and asserts their qualitative direction: more
workers help (to a saturation point), more I/O capacity helps, and
temp-folder staging overhead hurts.
"""

from repro.bench.ablation import (
    amdahl_bound,
    sweep_io_capacity,
    sweep_staging_cost,
    sweep_workers,
)


def test_bench_ablation_workers(benchmark):
    points = benchmark(sweep_workers)
    speedups = {int(p.value): p.speedup for p in points}
    assert speedups[12] > speedups[2] > speedups[1] * 0.9
    # Saturation: doubling workers past 12 buys little.
    assert speedups[24] < 1.3 * speedups[12]


def test_bench_ablation_io_capacity(benchmark):
    points = benchmark(sweep_io_capacity)
    assert points[-1].speedup > points[0].speedup


def test_bench_ablation_staging(benchmark):
    points = benchmark(sweep_staging_cost)
    by_mult = {p.value: p.speedup for p in points}
    assert by_mult[0.0] > by_mult[4.0]


def test_bench_ablation_amdahl_bound(benchmark):
    bound = benchmark(amdahl_bound)
    # Even with infinite workers the pipeline's serial fraction caps
    # the speedup well below the 57-way width of stage IX.
    assert 3.0 < bound < 40.0
