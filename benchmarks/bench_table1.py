"""Experiment E1 — regenerate Table I.

Model mode reproduces the paper's table on the simulated i5-12450H;
the benchmark times the full six-event, four-implementation
regeneration and asserts the reproduction tolerances.  A measured-mode
bench runs the real pipeline end-to-end (scaled down) for each
implementation so wall-clock on *this* machine is also recorded.
"""

import pytest

from benchmarks.conftest import fresh_context
from repro.bench.table1 import max_relative_error, render_table1, table1_model
from repro.core import IMPLEMENTATIONS


class TestTable1Model:
    def test_bench_table1_model(self, benchmark):
        rows = benchmark(table1_model)
        assert len(rows) == 6
        # Reproduction quality gate: every cell within 12% of Table I
        # (exact on the calibration event, predictions elsewhere).
        assert max_relative_error(rows) < 0.12

    def test_bench_table1_render(self, benchmark):
        rows = table1_model()
        text = benchmark(render_table1, rows)
        assert "SpeedUp" in text


@pytest.mark.parametrize("impl_cls", IMPLEMENTATIONS, ids=lambda c: c.name)
def test_bench_table1_measured(benchmark, tmp_path, bench_dataset_dir, impl_cls):
    """Measured mode: one wall-clock pipeline run per implementation."""
    counter = iter(range(1_000_000))

    def run():
        ctx = fresh_context(tmp_path / f"r{next(counter)}", bench_dataset_dir)
        return impl_cls().run(ctx)

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert result.total_s > 0
