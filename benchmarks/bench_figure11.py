"""Experiment E2/E5 — regenerate Fig. 11 (per-stage times & speedups).

Asserts the per-stage reproduction: stage IX dominates with ~57.2% of
the sequential time and the per-stage speedups land near the published
ones (IX 5.14x, X 1.5x, XI 2.1x, ...).
"""

import pytest

from repro.bench.figure11 import figure11_model, render_figure11, stage_ix_share
from repro.bench.paper_data import PAPER_STAGE_SPEEDUPS
from repro.bench.table1 import table1_model


def test_bench_figure11_model(benchmark):
    rows = benchmark(figure11_model)
    by_stage = {r.stage: r for r in rows}
    # Stage IX dominates and wins.
    assert by_stage["IX"].sequential_s == max(r.sequential_s for r in rows)
    for stage, published in PAPER_STAGE_SPEEDUPS.items():
        assert by_stage[stage].speedup == pytest.approx(published, rel=0.2), stage


def test_bench_figure11_stage_ix_share():
    rows = figure11_model()
    seq_total = next(r for r in table1_model() if r.event_id == "EV-JUL19B").seq_original_s
    assert stage_ix_share(rows, seq_total) == pytest.approx(0.572, abs=0.01)


def test_bench_figure11_render(benchmark):
    rows = figure11_model()
    assert "IX" in benchmark(render_figure11, rows)
