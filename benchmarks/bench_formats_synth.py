"""Micro-benchmarks of the I/O substrate and the data generator.

The pipeline's Heavy-I/O tag rests on reading/writing fixed-width
records; these benches pin the costs (and catch regressions in the
formatter, which every artifact flows through).
"""

import numpy as np
import pytest

from repro.dsp.peak import PeakValues
from repro.formats.common import COMPONENTS, Header, format_fixed_block, parse_fixed_block
from repro.formats.v1 import RawRecord, read_v1, write_v1
from repro.formats.v2 import CorrectedRecord, read_v2, write_v2
from repro.synth.dataset import synthesize_station_record
from repro.synth.events import EventSpec
from repro.synth.network import make_network

RNG = np.random.default_rng(99)
VALUES_20K = RNG.normal(size=20_000)


def test_bench_fixed_block_format(benchmark):
    text = benchmark(format_fixed_block, VALUES_20K)
    assert len(text) > 0


def test_bench_fixed_block_parse(benchmark):
    lines = format_fixed_block(VALUES_20K).splitlines()
    parsed = benchmark(parse_fixed_block, lines, len(VALUES_20K))
    assert parsed.shape == VALUES_20K.shape


@pytest.fixture(scope="module")
def station_record():
    header = Header(station="BN01", dt=0.01, npts=0, magnitude=5.0)
    return RawRecord(
        header=header,
        components={c: RNG.normal(size=8_000) for c in COMPONENTS},
    )


def test_bench_v1_write(benchmark, tmp_path, station_record):
    path = tmp_path / "BN01.v1"
    benchmark(write_v1, path, station_record)


def test_bench_v1_read(benchmark, tmp_path, station_record):
    path = tmp_path / "BN01.v1"
    write_v1(path, station_record)
    record = benchmark(read_v1, path)
    assert record.npts == 8_000


def test_bench_v2_roundtrip(benchmark, tmp_path):
    record = CorrectedRecord(
        header=Header(station="BN01", component="l", dt=0.01, npts=0),
        acceleration=RNG.normal(size=8_000),
        velocity=RNG.normal(size=8_000),
        displacement=RNG.normal(size=8_000),
        peaks=PeakValues(1, 0.1, 2, 0.2, 3, 0.3),
        f_stop_low=0.05,
        f_pass_low=0.1,
        f_pass_high=25.0,
        f_stop_high=30.0,
    )
    path = tmp_path / "BN01l.v2"

    def roundtrip():
        write_v2(path, record)
        return read_v2(path)

    back = benchmark(roundtrip)
    assert back.header.npts == 8_000


def test_bench_synthesize_station(benchmark):
    event = EventSpec("BN", "2024-01-01", 5.5, 1, 8_000, seed=1)
    station = make_network(1, seed=1)[0]
    record = benchmark(synthesize_station_record, event, station, 8_000)
    assert record.npts == 8_000
