"""Extension bench — the §VIII wavefront against the paper's best.

Model mode quantifies what removing the stage barriers buys on the
simulated evaluation platform; measured mode runs the real wavefront
implementation on this machine.
"""

import pytest

from benchmarks.conftest import fresh_context
from repro.bench.taskgraphs import simulate_implementation
from repro.bench.workloads import paper_workloads
from repro.core import WavefrontParallel


def test_bench_wavefront_model(benchmark):
    workload = paper_workloads()[-1]

    def run():
        return simulate_implementation("wavefront-parallel", workload).makespan_s

    wavefront = benchmark(run)
    seq = simulate_implementation("seq-original", workload).makespan_s
    full = simulate_implementation("full-parallel", workload).makespan_s
    assert wavefront < full
    assert seq / wavefront == pytest.approx(5.2, abs=0.6)


def test_bench_wavefront_all_events_model():
    for workload in paper_workloads():
        full = simulate_implementation("full-parallel", workload).makespan_s
        wavefront = simulate_implementation("wavefront-parallel", workload).makespan_s
        assert wavefront < full, workload.event_id


def test_bench_wavefront_measured(benchmark, tmp_path, bench_dataset_dir):
    counter = iter(range(1_000_000))

    def run():
        ctx = fresh_context(tmp_path / f"wf{next(counter)}", bench_dataset_dir)
        return WavefrontParallel().run(ctx)

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert result.stage_durations["wavefront"] > 0
