"""Shared fixtures for the benchmark suite.

Model-mode benches (the paper's tables/figures) run the calibrated
cost model on the simulated 12-LP machine — fast and deterministic.
Measured-mode benches run the real Python pipeline on scaled-down
synthetic events, reporting what this machine actually does.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.core import RunContext
from repro.core.context import ParallelSettings
from repro.spectra.response import ResponseSpectrumConfig, default_periods
from repro.synth.dataset import generate_event_dataset
from repro.synth.events import EventSpec

BENCH_EVENT = EventSpec("EV-BENCH", "2022-02-02", 5.4, 3, 24_000, seed=777)


@pytest.fixture(scope="session")
def bench_dataset_dir(tmp_path_factory: pytest.TempPathFactory) -> Path:
    """A three-station synthetic dataset shared by measured benches."""
    directory = tmp_path_factory.mktemp("bench-dataset")
    generate_event_dataset(BENCH_EVENT, directory, points_override=[1500, 2000, 2500])
    return directory


def fresh_context(root: Path, dataset_dir: Path, workers: int = 2) -> RunContext:
    """A pipeline context with a private copy of the bench dataset."""
    ctx = RunContext.for_directory(
        root,
        response_config=ResponseSpectrumConfig(
            periods=default_periods(15), dampings=(0.05,)
        ),
        parallel=ParallelSettings(num_workers=workers),
    )
    for src in dataset_dir.glob("*.v1"):
        shutil.copy2(src, ctx.workspace.input_dir / src.name)
    return ctx
