"""Micro-benchmarks of the numerical kernels.

Not a paper artifact per se, but pins the cost hierarchy the paper's
stage analysis rests on: the response-spectrum solver dominates, the
Duhamel formulation shows its O(D^2) scaling against Nigam–Jennings'
O(D), and the FFT/filter kernels are cheap by comparison.
"""

import numpy as np
import pytest

from repro.dsp.fft import fft_pure, rfft
from repro.dsp.fir import DEFAULT_BANDPASS, design_bandpass, fir_filter
from repro.spectra.response import (
    ResponseSpectrumConfig,
    response_spectrum_duhamel,
    response_spectrum_nigam_jennings,
)

RNG = np.random.default_rng(11)
SIGNAL_4K = RNG.normal(size=4096)
DT = 0.01
CONFIG = ResponseSpectrumConfig(periods=np.geomspace(0.1, 5.0, 10), dampings=(0.05,))


def test_bench_fft_numpy(benchmark):
    benchmark(rfft, SIGNAL_4K)


def test_bench_fft_pure(benchmark):
    benchmark(fft_pure, SIGNAL_4K)


def test_bench_filter_design(benchmark):
    benchmark(design_bandpass, DEFAULT_BANDPASS, DT)


def test_bench_filter_apply(benchmark):
    taps = design_bandpass(DEFAULT_BANDPASS, DT)
    benchmark(fir_filter, SIGNAL_4K, taps)


def test_bench_response_nigam_jennings(benchmark):
    benchmark(response_spectrum_nigam_jennings, SIGNAL_4K, DT, CONFIG)


def test_bench_response_duhamel_1k(benchmark):
    benchmark(response_spectrum_duhamel, SIGNAL_4K[:1024], DT, CONFIG)


def test_duhamel_quadratic_scaling():
    """The legacy formulation's O(D^2) cost shape (paper §VI-B)."""
    import time

    short = SIGNAL_4K[:512]
    long = SIGNAL_4K[:2048]
    cfg = ResponseSpectrumConfig(periods=np.array([0.5]), dampings=(0.05,))

    def clock(signal):
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            response_spectrum_duhamel(signal, DT, cfg)
            best = min(best, time.perf_counter() - t0)
        return best

    ratio = clock(long) / clock(short)
    # 4x the samples -> ~16x the work for O(D^2); allow broad slack for
    # constant overheads on small sizes.
    assert ratio > 5.0


def test_nigam_jennings_linear_scaling():
    """The replacement solver is O(D) per oscillator."""
    import time

    short = SIGNAL_4K[:1024]
    long = SIGNAL_4K[:4096]
    cfg = ResponseSpectrumConfig(periods=np.geomspace(0.1, 2.0, 20), dampings=(0.05,))

    def clock(signal):
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            response_spectrum_nigam_jennings(signal, DT, cfg)
            best = min(best, time.perf_counter() - t0)
        return best

    ratio = clock(long) / clock(short)
    # 4x the samples -> ~4x the work, far from quadratic.
    assert ratio < 8.0
