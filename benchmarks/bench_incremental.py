"""Extension bench — incremental reprocessing.

Quantifies what the make-style runner buys an observatory: the cold
run pays full price, the warm rerun costs only fingerprinting plus two
byte restores for the twice-written V2 generation.
"""

from benchmarks.conftest import fresh_context
from repro.core.incremental import IncrementalRunner


def test_bench_incremental_cold_vs_warm(benchmark, tmp_path, bench_dataset_dir):
    ctx = fresh_context(tmp_path / "incr", bench_dataset_dir)
    cold = IncrementalRunner()
    cold_result = cold.run(ctx)
    assert cold.executed  # everything ran

    def warm_run():
        runner = IncrementalRunner()
        return runner.run(ctx), runner

    (warm_result, warm_runner) = benchmark.pedantic(
        warm_run, rounds=3, iterations=1, warmup_rounds=0
    )
    assert warm_runner.executed == []
    # Warm rerun at least 3x faster than the cold one even at this
    # tiny scale (the ratio grows with record size).
    assert warm_result.total_s < cold_result.total_s / 3.0


def test_bench_incremental_single_station_update(benchmark, tmp_path, bench_dataset_dir):
    """Appending data to one station reprocesses without a cold start."""
    ctx = fresh_context(tmp_path / "upd", bench_dataset_dir)
    IncrementalRunner().run(ctx)
    victim = sorted(ctx.workspace.input_dir.glob("*.v1"))[0]
    original = victim.read_text()

    state = {"flip": False}

    def update_and_rerun():
        # Alternate between two variants so every round sees a change.
        state["flip"] = not state["flip"]
        text = original.replace(" 1.", " 2.", 1) if state["flip"] else original
        victim.write_text(text)
        runner = IncrementalRunner()
        runner.run(ctx)
        return runner

    runner = benchmark.pedantic(update_and_rerun, rounds=2, iterations=1, warmup_rounds=0)
    assert 16 in runner.executed  # the affected chain really reran
